#include "score/karlin.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace oasis {
namespace score {

namespace {

// Robinson & Robinson (1991) amino-acid background frequencies, the standard
// protein composition model used by BLAST statistics. Order matches
// seq::Alphabet::Protein(): A R N D C Q E G H I L K M F P S T W Y V (B,Z,X=0).
constexpr double kRobinsonFreqs[20] = {
    0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295,
    0.07377, 0.02199, 0.05142, 0.09019, 0.05744, 0.02243, 0.03856,
    0.05203, 0.07120, 0.05841, 0.01330, 0.03216, 0.06441};

// Pair-score distribution: prob[s - lo] = sum over residue pairs with
// Score(a,b) == s of p_a * p_b.
struct ScoreDistribution {
  int lo = 0;
  int hi = 0;
  std::vector<double> prob;  // size hi - lo + 1

  double Prob(int s) const { return prob[static_cast<size_t>(s - lo)]; }
};

ScoreDistribution PairScoreDistribution(const SubstitutionMatrix& matrix,
                                        const std::vector<double>& bg) {
  ScoreDistribution dist;
  dist.lo = matrix.min_score();
  dist.hi = matrix.max_score();
  dist.prob.assign(static_cast<size_t>(dist.hi - dist.lo + 1), 0.0);
  const uint32_t n = matrix.size();
  double total = 0.0;
  for (uint32_t a = 0; a < n; ++a) {
    if (bg[a] <= 0.0) continue;
    for (uint32_t b = 0; b < n; ++b) {
      if (bg[b] <= 0.0) continue;
      double p = bg[a] * bg[b];
      dist.prob[static_cast<size_t>(matrix.Score(a, b) - dist.lo)] += p;
      total += p;
    }
  }
  // Normalize in case the background is not exactly 1 after truncation.
  if (total > 0.0) {
    for (double& p : dist.prob) p /= total;
  }
  // Trim empty tails so lo/hi are attainable scores.
  while (dist.lo < dist.hi && dist.prob.front() == 0.0) {
    dist.prob.erase(dist.prob.begin());
    ++dist.lo;
  }
  while (dist.hi > dist.lo && dist.prob.back() == 0.0) {
    dist.prob.pop_back();
    --dist.hi;
  }
  return dist;
}

// phi(lambda) = sum_s p_s * e^{lambda s}. phi(0)=1; with negative mean and
// positive max score, phi has exactly one positive root lambda* of
// phi(lambda)=1, and phi is strictly convex.
double Phi(const ScoreDistribution& d, double lambda) {
  double sum = 0.0;
  for (int s = d.lo; s <= d.hi; ++s) {
    double p = d.Prob(s);
    if (p > 0.0) sum += p * std::exp(lambda * s);
  }
  return sum;
}

double SolveLambda(const ScoreDistribution& d) {
  // Bracket the root: phi decreases below 1 just above 0 (negative mean)
  // and eventually exceeds 1 (positive max score).
  double hi = 0.5;
  while (Phi(d, hi) < 1.0) {
    hi *= 2.0;
    OASIS_CHECK_LT(hi, 1e4) << "lambda bracket failed";
  }
  double lo = 0.0;
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (Phi(d, mid) < 1.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

int ScoreGcd(const ScoreDistribution& d) {
  int g = 0;
  for (int s = d.lo; s <= d.hi; ++s) {
    if (d.Prob(s) > 0.0 && s != 0) g = std::gcd(g, std::abs(s));
  }
  return g == 0 ? 1 : g;
}

// Karlin-Altschul (1990) series for K; see header comment. P_i, the i-step
// partial-sum distribution, is built by repeated convolution with the pair
// distribution. Terms decay geometrically (negative drift), so ~100
// iterations with an absolute tolerance is ample for any sane matrix.
double ComputeK(const ScoreDistribution& d, double lambda, double H) {
  const int kMaxIter = 200;
  const double kTol = 1e-10;
  const int span = d.hi - d.lo + 1;

  // walk[j - walk_lo] = P(S_i = j) for the current i.
  std::vector<double> walk(d.prob);
  int walk_lo = d.lo;

  double sigma = 0.0;
  for (int i = 1; i <= kMaxIter; ++i) {
    // Accumulate this step's term.
    double term = 0.0;
    for (size_t idx = 0; idx < walk.size(); ++idx) {
      int j = walk_lo + static_cast<int>(idx);
      double p = walk[idx];
      if (p <= 0.0) continue;
      term += (j >= 0) ? p : p * std::exp(lambda * j);
    }
    sigma += term / i;
    if (term / i < kTol) break;

    if (i == kMaxIter) break;
    // Convolve walk with the base distribution for the next step.
    std::vector<double> next(walk.size() + static_cast<size_t>(span) - 1, 0.0);
    for (size_t idx = 0; idx < walk.size(); ++idx) {
      double p = walk[idx];
      if (p <= 0.0) continue;
      for (int s = d.lo; s <= d.hi; ++s) {
        double q = d.Prob(s);
        if (q > 0.0) next[idx + static_cast<size_t>(s - d.lo)] += p * q;
      }
    }
    walk = std::move(next);
    walk_lo += d.lo;
  }

  int gcd = ScoreGcd(d);
  double K = gcd * lambda * std::exp(-2.0 * sigma) /
             (H * (1.0 - std::exp(-static_cast<double>(gcd) * lambda)));
  return K;
}

}  // namespace

std::vector<double> BackgroundFrequencies(const seq::Alphabet& alphabet) {
  std::vector<double> bg(alphabet.size(), 0.0);
  if (alphabet.kind() == seq::AlphabetKind::kDna) {
    std::fill(bg.begin(), bg.end(), 0.25);
  } else {
    for (size_t i = 0; i < 20 && i < bg.size(); ++i) bg[i] = kRobinsonFreqs[i];
  }
  return bg;
}

util::StatusOr<KarlinParams> ComputeKarlinParams(
    const SubstitutionMatrix& matrix, const std::vector<double>& background) {
  if (background.size() != matrix.size()) {
    return util::Status::InvalidArgument(
        "background frequency vector size mismatch");
  }
  ScoreDistribution d = PairScoreDistribution(matrix, background);
  if (d.hi <= 0) {
    return util::Status::InvalidArgument(
        "matrix '" + matrix.name() +
        "': maximum attainable pair score must be positive");
  }
  double mean = 0.0;
  for (int s = d.lo; s <= d.hi; ++s) mean += s * d.Prob(s);
  if (mean >= 0.0) {
    return util::Status::InvalidArgument(
        "matrix '" + matrix.name() +
        "': expected pair score must be negative for local alignment "
        "statistics (got " +
        std::to_string(mean) + ")");
  }

  KarlinParams params;
  params.lambda = SolveLambda(d);
  // H = lambda * sum_s s p_s e^{lambda s}.
  double h = 0.0;
  for (int s = d.lo; s <= d.hi; ++s) {
    double p = d.Prob(s);
    if (p > 0.0) h += s * p * std::exp(params.lambda * s);
  }
  params.H = params.lambda * h;
  params.K = ComputeK(d, params.lambda, params.H);
  return params;
}

util::StatusOr<KarlinParams> ComputeKarlinParams(const SubstitutionMatrix& matrix) {
  return ComputeKarlinParams(matrix, BackgroundFrequencies(matrix.alphabet()));
}

double EValueForScore(const KarlinParams& params, double s, uint64_t query_len,
                      uint64_t db_len) {
  return params.K * static_cast<double>(query_len) *
         static_cast<double>(db_len) * std::exp(-params.lambda * s);
}

ScoreT MinScoreForEValue(const KarlinParams& params, double evalue,
                         uint64_t query_len, uint64_t db_len) {
  OASIS_CHECK_GT(evalue, 0.0);
  double kmn = params.K * static_cast<double>(query_len) *
               static_cast<double>(db_len);
  double s = std::log(kmn / evalue) / params.lambda;
  ScoreT min_score = static_cast<ScoreT>(std::ceil(s - 1e-9));
  return std::max<ScoreT>(min_score, 1);
}

}  // namespace score
}  // namespace oasis
