// Deterministic, fast PRNG (xoshiro256**) used everywhere randomness is
// needed so that workloads, tests and benchmarks are reproducible from a
// single seed.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace oasis {
namespace util {

/// xoshiro256** 1.0 with splitmix64 seeding. Not cryptographic; chosen for
/// speed and reproducibility across platforms (no libstdc++ distribution
/// dependence in the core generator).
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). Precondition: n > 0. Uses Lemire's unbiased method.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (no state caching; fine for workloads).
  double NextGaussian();

  /// Samples an index according to `weights` (need not be normalized;
  /// non-negative). Returns weights.size()-1 on numeric fallthrough.
  size_t Categorical(const std::vector<double>& weights);

  /// Fork a statistically independent child stream (for per-sequence seeds).
  Random Fork();

 private:
  uint64_t s_[4];
};

}  // namespace util
}  // namespace oasis
