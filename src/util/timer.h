// Wall-clock stopwatch used by the benchmark harnesses.

#pragma once

#include <chrono>
#include <cstdint>

namespace oasis {
namespace util {

/// Monotonic stopwatch. Started on construction; Restart() resets.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Restart.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace util
}  // namespace oasis
