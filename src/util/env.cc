#include "util/env.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <vector>

#include "util/logging.h"

namespace oasis {
namespace util {

int64_t EnvInt64(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') return def;
  return static_cast<int64_t>(parsed);
}

double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return def;
  return parsed;
}

std::string EnvString(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : def;
}

TempDir::TempDir(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") + "/oasis-" +
                     prefix + "-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* made = mkdtemp(buf.data());
  OASIS_CHECK(made != nullptr) << "mkdtemp failed for " << tmpl;
  path_ = made;
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
}

}  // namespace util
}  // namespace oasis
