// Environment-variable helpers shared by benches and examples, plus a tiny
// scoped temporary-directory utility used by tests and disk-backed benches.

#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace oasis {
namespace util {

/// Returns the integer value of env var `name`, or `def` when unset/invalid.
int64_t EnvInt64(const char* name, int64_t def);

/// Returns the double value of env var `name`, or `def` when unset/invalid.
double EnvDouble(const char* name, double def);

/// Returns env var `name`, or `def` when unset.
std::string EnvString(const char* name, const std::string& def);

/// Creates a unique temporary directory and removes it (recursively) on
/// destruction. Used for packed-tree files in tests and benches.
class TempDir {
 public:
  /// Creates a directory under $TMPDIR (default /tmp) named
  /// oasis-<prefix>-XXXXXX. Aborts on failure (tests cannot proceed).
  explicit TempDir(const std::string& prefix = "t");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  /// Path of `name` inside the directory.
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

}  // namespace util
}  // namespace oasis
