#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace oasis {
namespace util {

namespace {
inline uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  OASIS_DCHECK(n > 0);
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  OASIS_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Random::NextGaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

size_t Random::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0.0 || weights.empty()) return weights.empty() ? 0 : weights.size() - 1;
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    double w = weights[i] > 0 ? weights[i] : 0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

Random Random::Fork() { return Random(Next() ^ 0xA5A5A5A5DEADBEEFull); }

}  // namespace util
}  // namespace oasis
