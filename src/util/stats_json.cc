#include "util/stats_json.h"

#include <cstdarg>
#include <cstdio>

namespace oasis {
namespace util {

namespace {

/// printf-append onto a std::string (the renderers are format-heavy and
/// the historical output was built with printf formatting, so keeping the
/// exact format strings is the simplest byte-for-byte guarantee).
void Appendf(std::string* out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n > 0) {
    const size_t old = out->size();
    out->resize(old + static_cast<size_t>(n) + 1);
    std::vsnprintf(out->data() + old, static_cast<size_t>(n) + 1, fmt,
                   args_copy);
    out->resize(old + static_cast<size_t>(n));
  }
  va_end(args_copy);
}

/// The per-volume table of a multi-volume set. Appended by both render
/// modes, but only when rows exist, so legacy single-volume output stays
/// byte-identical to the pinned historical format.
void AppendVolumesText(std::string* out, const EngineStatsSnapshot& s) {
  if (s.volumes.empty()) return;
  Appendf(out, "volumes: %zu\n", s.volumes.size());
  Appendf(out, "%-10s %12s %14s %10s %7s %14s %12s %10s\n", "volume",
          "sequences", "residues", "partitions", "passes", "max suffixes",
          "indexed", "masked");
  for (const VolumeStatsRow& v : s.volumes) {
    Appendf(out, "%-10s %12llu %14llu %10llu %7llu %14llu %12llu %10llu\n",
            v.name.c_str(), static_cast<unsigned long long>(v.sequences),
            static_cast<unsigned long long>(v.residues),
            static_cast<unsigned long long>(v.partitions),
            static_cast<unsigned long long>(v.passes),
            static_cast<unsigned long long>(v.max_partition_suffixes),
            static_cast<unsigned long long>(v.indexed_suffixes),
            static_cast<unsigned long long>(v.masked_suffixes));
  }
}

}  // namespace

std::string StatsText(const EngineStatsSnapshot& s) {
  std::string out;
  if (!s.pooled) {
    Appendf(&out,
            "\nio mode mmap: zero-copy block access, no buffer-pool "
            "statistics (use --io-mode pooled for Figure 8 numbers)\n");
    Appendf(&out,
            "readahead: n/a in mmap mode (speculation targets the "
            "buffer pool; use --io-mode pooled --readahead K)\n");
    AppendVolumesText(&out, s);
    return out;
  }
  Appendf(&out, "\nbuffer pool: %u frames x %u B in %u shard%s\n", s.frames,
          s.block_size, s.shards, s.shards == 1 ? "" : "s");
  Appendf(&out, "%-10s %12s %12s %10s\n", "segment", "requests", "hits",
          "hit ratio");
  for (const SegmentStatsRow& seg : s.segments) {
    Appendf(&out, "%-10s %12llu %12llu %10.3f\n", seg.name.c_str(),
            static_cast<unsigned long long>(seg.requests),
            static_cast<unsigned long long>(seg.hits), seg.hit_ratio);
  }
  Appendf(&out, "%-10s %12llu %12llu %10.3f\n", "total",
          static_cast<unsigned long long>(s.total.requests),
          static_cast<unsigned long long>(s.total.hits), s.total.hit_ratio);
  if (s.readahead_enabled) {
    const std::string mode =
        s.readahead_adaptive
            ? "adaptive, initial " + std::to_string(s.readahead_blocks) +
                  " blocks"
            : std::to_string(s.readahead_blocks) + " blocks/miss";
    Appendf(&out,
            "readahead (%s): %llu issued, %llu used, %llu wasted "
            "(waste ratio %.3f)\n",
            mode.c_str(), static_cast<unsigned long long>(s.readahead_issued),
            static_cast<unsigned long long>(s.readahead_used),
            static_cast<unsigned long long>(s.readahead_wasted),
            s.readahead_waste_ratio);
    if (s.readahead_adaptive) {
      Appendf(&out, "%-10s %8s %8s %7s %8s %7s %8s\n", "segment", "window",
              "ewma", "samples", "grows", "shrinks", "probes");
      for (const AdaptiveWindowRow& w : s.windows) {
        Appendf(&out, "%-10s %8u %8.3f %7llu %8llu %7llu %8llu\n",
                w.name.c_str(), w.window, w.ewma < 0 ? 0.0 : w.ewma,
                static_cast<unsigned long long>(w.samples),
                static_cast<unsigned long long>(w.grows),
                static_cast<unsigned long long>(w.shrinks),
                static_cast<unsigned long long>(w.probes));
      }
    }
  } else {
    Appendf(&out,
            "readahead: disabled (--readahead K for a fixed K-block "
            "window, --readahead auto for the adaptive one)\n");
  }
  AppendVolumesText(&out, s);
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          Appendf(&out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void AppendSegmentJson(std::string* out, const SegmentStatsRow& seg) {
  Appendf(out, "{\"name\":\"%s\",\"requests\":%llu,\"hits\":%llu,"
               "\"hit_ratio\":%.6f}",
          JsonEscape(seg.name).c_str(),
          static_cast<unsigned long long>(seg.requests),
          static_cast<unsigned long long>(seg.hits), seg.hit_ratio);
}

/// `,"volumes":[...]` for a multi-volume snapshot, empty string otherwise
/// (key omitted entirely, keeping single-volume JSON byte-identical).
void AppendVolumesJson(std::string* out, const EngineStatsSnapshot& s) {
  if (s.volumes.empty()) return;
  *out += ",\"volumes\":[";
  for (size_t i = 0; i < s.volumes.size(); ++i) {
    const VolumeStatsRow& v = s.volumes[i];
    if (i > 0) *out += ',';
    Appendf(out,
            "{\"name\":\"%s\",\"sequences\":%llu,\"residues\":%llu,"
            "\"partitions\":%llu,\"passes\":%llu,"
            "\"max_partition_suffixes\":%llu,"
            "\"indexed_suffixes\":%llu,\"masked_suffixes\":%llu}",
            JsonEscape(v.name).c_str(),
            static_cast<unsigned long long>(v.sequences),
            static_cast<unsigned long long>(v.residues),
            static_cast<unsigned long long>(v.partitions),
            static_cast<unsigned long long>(v.passes),
            static_cast<unsigned long long>(v.max_partition_suffixes),
            static_cast<unsigned long long>(v.indexed_suffixes),
            static_cast<unsigned long long>(v.masked_suffixes));
  }
  *out += ']';
}

}  // namespace

std::string StatsJson(const EngineStatsSnapshot& s) {
  std::string out;
  if (!s.pooled) {
    out = "{\"io_mode\":\"mmap\",\"pool\":null,\"readahead\":null";
    AppendVolumesJson(&out, s);
    out += '}';
    return out;
  }
  out += "{\"io_mode\":\"pooled\",\"pool\":{";
  Appendf(&out, "\"frames\":%u,\"block_size\":%u,\"shards\":%u,\"segments\":[",
          s.frames, s.block_size, s.shards);
  for (size_t i = 0; i < s.segments.size(); ++i) {
    if (i > 0) out += ',';
    AppendSegmentJson(&out, s.segments[i]);
  }
  out += "],\"total\":";
  AppendSegmentJson(&out, s.total);
  out += "},\"readahead\":";
  if (!s.readahead_enabled) {
    out += "{\"enabled\":false}";
    AppendVolumesJson(&out, s);
    out += '}';
    return out;
  }
  Appendf(&out,
          "{\"enabled\":true,\"adaptive\":%s,\"blocks\":%u,\"issued\":%llu,"
          "\"used\":%llu,\"wasted\":%llu,\"waste_ratio\":%.6f",
          s.readahead_adaptive ? "true" : "false", s.readahead_blocks,
          static_cast<unsigned long long>(s.readahead_issued),
          static_cast<unsigned long long>(s.readahead_used),
          static_cast<unsigned long long>(s.readahead_wasted),
          s.readahead_waste_ratio);
  if (s.readahead_adaptive) {
    out += ",\"windows\":[";
    for (size_t i = 0; i < s.windows.size(); ++i) {
      const AdaptiveWindowRow& w = s.windows[i];
      if (i > 0) out += ',';
      Appendf(&out,
              "{\"name\":\"%s\",\"window\":%u,\"ewma\":%.6f,\"samples\":%llu,"
              "\"grows\":%llu,\"shrinks\":%llu,\"probes\":%llu}",
              JsonEscape(w.name).c_str(), w.window, w.ewma < 0 ? 0.0 : w.ewma,
              static_cast<unsigned long long>(w.samples),
              static_cast<unsigned long long>(w.grows),
              static_cast<unsigned long long>(w.shrinks),
              static_cast<unsigned long long>(w.probes));
    }
    out += ']';
  }
  out += '}';
  AppendVolumesJson(&out, s);
  out += '}';
  return out;
}

}  // namespace util
}  // namespace oasis
