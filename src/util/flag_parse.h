// Strict numeric parsing for command-line flag values.
//
// The C strto* family is the wrong tool for flags: it silently accepts
// trailing garbage ("12abc" -> 12), wraps negative input into huge
// unsigned values ("-1" -> 4294967295 via strtoul), and signals "no
// digits at all" only through an easily-missed end-pointer check ("abc"
// -> 0). A CLI that feeds such values into pool sizes and thread counts
// turns a typo into a 4-billion-thread request.
//
// These helpers parse the *entire* string or fail, reject any sign that
// the target range cannot represent, and range-check the result, so a
// caller gets exactly one failure mode: a Status naming what was wrong.
// They are deliberately library-level (not CLI-local) so they can be unit
// tested (tests/flag_parse_test.cc) and reused by every binary that
// parses knobs.

#pragma once

#include <cstdint>
#include <string_view>

#include "util/status.h"

namespace oasis {
namespace util {

/// Parses `text` as a base-10 signed integer in [min, max]. The entire
/// string must be consumed (leading/trailing whitespace included — flags
/// arrive pre-tokenized); returns InvalidArgument naming the offending
/// text otherwise, and OutOfRange when the value falls outside [min, max].
StatusOr<int64_t> ParseInt64(std::string_view text, int64_t min,
                             int64_t max);

/// ParseInt64 restricted to unsigned targets: additionally rejects any
/// leading '-' (so "-1" fails instead of wrapping) and checks [min, max]
/// over the full uint64 range.
StatusOr<uint64_t> ParseUint64(std::string_view text, uint64_t min,
                               uint64_t max);

/// ParseUint64 narrowed to uint32 (flag values like thread counts and
/// block windows).
StatusOr<uint32_t> ParseUint32(std::string_view text, uint32_t min,
                               uint32_t max);

/// Parses `text` as a finite decimal double in [min, max] (hex floats,
/// inf and nan are rejected — no flag of ours means them).
StatusOr<double> ParseDouble(std::string_view text, double min, double max);

}  // namespace util
}  // namespace oasis
