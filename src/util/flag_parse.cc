#include "util/flag_parse.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace oasis {
namespace util {

namespace {

std::string Quoted(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('\'');
  out.append(text);
  out.push_back('\'');
  return out;
}

/// %g formatting for range-error messages: std::to_string would render
/// 1e-300 as "0.000000" and claim the rejected value lies inside the
/// printed range.
std::string FormatDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace

StatusOr<int64_t> ParseInt64(std::string_view text, int64_t min,
                             int64_t max) {
  // The character-class pre-check keeps this aligned with ParseUint64:
  // strtoll would silently skip leading whitespace, and the contract is
  // that the *entire* string is the number.
  std::string_view digits = text;
  if (!digits.empty() && (digits.front() == '+' || digits.front() == '-')) {
    digits.remove_prefix(1);
  }
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string_view::npos) {
    return Status::InvalidArgument("expected a base-10 integer, got " +
                                   Quoted(text));
  }
  // strtoll needs a NUL-terminated buffer; flags are short, so the copy
  // is free compared to one Status allocation.
  const std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || end == buf.c_str()) {
    return Status::InvalidArgument("expected a base-10 integer, got " +
                                   Quoted(text));
  }
  if (errno == ERANGE || value < min || value > max) {
    return Status::OutOfRange("value " + Quoted(text) + " outside [" +
                              std::to_string(min) + ", " +
                              std::to_string(max) + "]");
  }
  return static_cast<int64_t>(value);
}

StatusOr<uint64_t> ParseUint64(std::string_view text, uint64_t min,
                               uint64_t max) {
  // Reject a sign up front: strtoull would happily wrap "-1" to 2^64-1,
  // which is exactly the bug class this helper exists to kill.
  std::string_view digits = text;
  if (!digits.empty() && digits.front() == '+') digits.remove_prefix(1);
  if (digits.empty() || digits.front() == '-' ||
      digits.find_first_not_of("0123456789") != std::string_view::npos) {
    return Status::InvalidArgument(
        "expected a non-negative base-10 integer, got " + Quoted(text));
  }
  const std::string buf(digits);
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument(
        "expected a non-negative base-10 integer, got " + Quoted(text));
  }
  if (errno == ERANGE || value < min || value > max) {
    return Status::OutOfRange("value " + Quoted(text) + " outside [" +
                              std::to_string(min) + ", " +
                              std::to_string(max) + "]");
  }
  return static_cast<uint64_t>(value);
}

StatusOr<uint32_t> ParseUint32(std::string_view text, uint32_t min,
                               uint32_t max) {
  OASIS_ASSIGN_OR_RETURN(uint64_t value, ParseUint64(text, min, max));
  return static_cast<uint32_t>(value);
}

StatusOr<double> ParseDouble(std::string_view text, double min, double max) {
  const std::string buf(text);
  // strtod's extras — hex floats, "inf", "nan" — are never what a flag
  // means; only plain decimal/scientific notation gets through.
  if (buf.empty() ||
      buf.find_first_not_of("0123456789.eE+-") != std::string::npos) {
    return Status::InvalidArgument("expected a finite decimal number, got " +
                                   Quoted(text));
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || end == buf.c_str() ||
      !std::isfinite(value)) {
    return Status::InvalidArgument("expected a finite decimal number, got " +
                                   Quoted(text));
  }
  if (errno == ERANGE || value < min || value > max) {
    return Status::OutOfRange("value " + Quoted(text) + " outside [" +
                              FormatDouble(min) + ", " + FormatDouble(max) +
                              "]");
  }
  return value;
}

}  // namespace util
}  // namespace oasis
