// Clang Thread Safety Analysis annotations (ABSL-style spelling).
//
// These macros expand to Clang's capability attributes when the compiler
// supports them and to nothing everywhere else, so annotated code builds
// identically under gcc/MSVC while the clang CI leg compiles the tree
// with -Werror=thread-safety and rejects any lock-discipline violation
// at compile time.
//
// The annotations only see syntax, not aliases: a member access and the
// lock expression that guards it must name the mutex through the same
// base expression (`shard.mutex` guards `shard.frames`, not a copy of
// the reference). std::mutex itself carries no attributes, so analysed
// code must use the annotated wrappers in util/mutex.h.
//
// See docs/STATIC_ANALYSIS.md for the annotation guide.

#ifndef OASIS_UTIL_THREAD_ANNOTATIONS_H_
#define OASIS_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define OASIS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define OASIS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

// Marks a class as a lockable capability ("mutex" in diagnostics).
#define CAPABILITY(x) OASIS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// Marks an RAII class whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY OASIS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Declares that the data member is protected by the given capability:
// reads require the capability held shared or exclusive, writes require
// it exclusive.
#define GUARDED_BY(x) OASIS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// Like GUARDED_BY, but protects the data POINTED TO by the member rather
// than the pointer itself.
#define PT_GUARDED_BY(x) OASIS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// Declares that callers must hold the capability (exclusively) before
// calling, and that the function does not release it.
#define REQUIRES(...) \
  OASIS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

// Shared-ownership variant of REQUIRES.
#define REQUIRES_SHARED(...) \
  OASIS_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

// Declares that the function acquires the capability and holds it on
// return; callers must not already hold it.
#define ACQUIRE(...) \
  OASIS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

// Shared-ownership variant of ACQUIRE.
#define ACQUIRE_SHARED(...) \
  OASIS_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

// Declares that the function releases the capability; callers must hold
// it on entry.
#define RELEASE(...) \
  OASIS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

// Shared-ownership variant of RELEASE.
#define RELEASE_SHARED(...) \
  OASIS_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

// Declares a try-lock: acquires the capability only when returning the
// given boolean value.
#define TRY_ACQUIRE(...) \
  OASIS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

// Declares that callers must NOT hold the capability (the function
// acquires and releases it internally, or would deadlock).
#define EXCLUDES(...) OASIS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Declares that the annotated capability must be acquired after the
// argument (lock-order edges, checked when both are annotated).
#define ACQUIRED_AFTER(...) \
  OASIS_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

// Declares that the annotated capability must be acquired before the
// argument.
#define ACQUIRED_BEFORE(...) \
  OASIS_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

// Declares that the function returns a reference to the given capability
// (lets accessors expose a member mutex for annotation purposes).
#define RETURN_CAPABILITY(x) OASIS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Escape hatch: disables analysis inside one function. Use only where
// the discipline is correct but inexpressible (e.g. adopting a lock
// taken through a type the analysis cannot see).
#define NO_THREAD_SAFETY_ANALYSIS \
  OASIS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

// Marks a function that dynamically verifies (and then vouches to the
// analysis) that the capability is held — for helpers reachable from
// annotated and unannotated code alike.
#define ASSERT_CAPABILITY(x) \
  OASIS_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#endif  // OASIS_UTIL_THREAD_ANNOTATIONS_H_
