// Annotated synchronization primitives.
//
// Thin zero-overhead wrappers over std::mutex / std::condition_variable
// that carry the Clang Thread Safety attributes from
// util/thread_annotations.h. The standard library types are not
// annotated, so code that wants `-Werror=thread-safety` coverage must
// hold its locks through these types: the clang CI leg then proves at
// compile time that every GUARDED_BY member is only touched with the
// right mutex held.
//
// All methods inline to the exact std:: calls they wrap; Release builds
// emit identical code to using the std types directly.

#ifndef OASIS_UTIL_MUTEX_H_
#define OASIS_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace oasis {
namespace util {

/// Annotated standard mutex. Prefer the RAII `MutexLock` over calling
/// `Lock`/`Unlock` directly; the raw calls exist for adoption patterns
/// and for `CondVar`.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  /// Deleted: a mutex identifies a critical section and cannot be copied.
  Mutex& operator=(const Mutex&) = delete;

  /// Blocks until the calling thread owns the mutex.
  void Lock() ACQUIRE() { mu_.lock(); }

  /// Releases ownership; the caller must hold the mutex.
  void Unlock() RELEASE() { mu_.unlock(); }

  /// Attempts to acquire without blocking; returns true on success.
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for interop with std::unique_lock in the
  /// few places that need deferred/adopted locking (see CondVar).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock for `Mutex` with mid-scope `Unlock`/`Lock` support, so the
/// buffer pool's "claim under the lock, pread off the lock, publish under
/// the lock" pattern stays expressible under analysis.
class SCOPED_CAPABILITY MutexLock {
 public:
  /// Acquires `mu` for the lifetime of this object.
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu.Lock();
  }

  /// Releases the mutex unless `Unlock()` already did.
  ~MutexLock() RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  /// Deleted: the lock is bound to one scope.
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the mutex early (e.g. to do I/O off the lock).
  void Unlock() RELEASE() {
    held_ = false;
    mu_.Unlock();
  }

  /// Re-acquires after an early `Unlock()`.
  void Lock() ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Annotated condition variable bound to `Mutex`. Waits require the
/// mutex held, exactly like std::condition_variable with a unique_lock;
/// the analysis sees the mutex as continuously held across the wait
/// (it is re-acquired before `Wait` returns, so GUARDED_BY data is safe
/// to touch on either side).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  /// Deleted: waiters hold references to this object.
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, re-acquires `mu`.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership stays with the caller's MutexLock
  }

  /// Predicate loop: waits until `pred()` is true.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Timed predicate wait; returns `pred()` at exit (false on timeout).
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout,
               Pred pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    const bool ok = cv_.wait_for(lk, timeout, std::move(pred));
    lk.release();
    return ok;
  }

  /// Wakes one waiter.
  void NotifyOne() { cv_.notify_one(); }

  /// Wakes all waiters.
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace util
}  // namespace oasis

#endif  // OASIS_UTIL_MUTEX_H_
