// Shared emission of engine storage statistics — one snapshot struct, two
// renderers.
//
// The per-segment pool counters, readahead outcomes, and adaptive-window
// trajectories used to be formatted inline by oasis_cli's --stats printer;
// the daemon's /stats endpoint needs the same numbers as JSON. Formatting
// them twice guarantees drift, so both surfaces render from one
// EngineStatsSnapshot (filled by api::Engine::CollectStats):
//
//   StatsText  the CLI's historical human-readable block, byte-for-byte —
//              the Figure 8 table plus readahead/adaptive lines;
//   StatsJson  a canonical machine-readable encoding (stable key order,
//              fixed float precision) of exactly the same snapshot.
//
// This lives in util/ below the storage layer, so the snapshot is plain
// data: no storage types leak into consumers that only want to render.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace oasis {
namespace util {

/// One buffer-pool segment's counters (or the all-segments total).
struct SegmentStatsRow {
  std::string name;       ///< segment name ("internal", "leaves", ...)
  uint64_t requests = 0;  ///< block fetches routed at the pool
  uint64_t hits = 0;      ///< fetches served without touching disk
  double hit_ratio = 0;   ///< hits / requests (0 when no requests)
};

/// One segment's live adaptive-readahead window and its trajectory.
struct AdaptiveWindowRow {
  std::string name;      ///< segment name
  uint32_t window = 0;   ///< current speculation window in blocks
  double ewma = 0;       ///< smoothed used-ratio the controller steers by
  uint64_t samples = 0;  ///< outcome windows observed
  uint64_t grows = 0;    ///< additive-increase decisions
  uint64_t shrinks = 0;  ///< multiplicative-decrease decisions
  uint64_t probes = 0;   ///< speculative re-opens from a collapsed window
};

/// One volume of a multi-volume index set: its counts plus the
/// partitioned-build statistics recorded in the manifest at build time.
struct VolumeStatsRow {
  std::string name;        ///< manifest volume name ("vol_0003", or ".")
  uint64_t sequences = 0;  ///< database sequences in the volume
  uint64_t residues = 0;   ///< residues, terminators excluded
  uint64_t partitions = 0;  ///< prefix partitions of the volume's build
  uint64_t passes = 0;      ///< builder passes over the partitions
  uint64_t max_partition_suffixes = 0;  ///< largest single-pass suffix load
  uint64_t indexed_suffixes = 0;  ///< suffixes given a leaf at build time
  uint64_t masked_suffixes = 0;   ///< suffixes excluded by soft masking
};

/// Everything the stats surfaces render, captured at one instant. Plain
/// data: fill it from an engine (api::Engine::CollectStats) or by hand in
/// tests.
struct EngineStatsSnapshot {
  /// False for an mmap engine: no pool, no counters — the renderers emit
  /// the explicit "n/a in mmap mode" notices instead of zeros.
  bool pooled = false;

  // Pool geometry (valid when pooled).
  uint32_t frames = 0;      ///< total pool frames
  uint32_t block_size = 0;  ///< bytes per frame
  uint32_t shards = 0;      ///< lock shards

  std::vector<SegmentStatsRow> segments;  ///< per-segment counters, in id order
  SegmentStatsRow total;                  ///< all-segments sum

  /// True when the engine runs speculative sibling-run readahead.
  bool readahead_enabled = false;
  /// True when the window adapts to observed prefetch accuracy.
  bool readahead_adaptive = false;
  /// Configured window (fixed mode) or initial window (adaptive mode).
  uint32_t readahead_blocks = 0;
  uint64_t readahead_issued = 0;  ///< blocks speculatively fetched
  uint64_t readahead_used = 0;    ///< speculative blocks later requested
  uint64_t readahead_wasted = 0;  ///< evicted or dropped unused
  double readahead_waste_ratio = 0;  ///< wasted / issued (0 when none issued)

  /// Per-segment adaptive windows; filled only in adaptive mode.
  std::vector<AdaptiveWindowRow> windows;

  /// Per-volume rows of a multi-volume index set, in global order. Empty
  /// for a legacy single-directory index — both renderers emit the volume
  /// section only when rows exist, which keeps the historical
  /// single-volume output byte-identical.
  std::vector<VolumeStatsRow> volumes;
};

/// Renders the snapshot as the CLI's historical --stats block, including
/// its leading newline — byte-identical to what oasis_cli printed before
/// this formatter existed (tests pin that equivalence).
std::string StatsText(const EngineStatsSnapshot& snapshot);

/// Renders the snapshot as canonical JSON: fixed key order, ratios with
/// exactly six fractional digits, no whitespace. Identical snapshots
/// produce identical bytes, so the daemon's /stats responses are
/// comparable across calls. An mmap snapshot renders the pool and
/// readahead objects as null rather than omitting them.
std::string StatsJson(const EngineStatsSnapshot& snapshot);

/// Escapes `s` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters; everything else passes through).
/// Exposed for the daemon's hand-rolled JSON responses.
std::string JsonEscape(std::string_view s);

}  // namespace util
}  // namespace oasis
