// Status / StatusOr error-handling primitives (RocksDB / Arrow idiom).
//
// Library code never throws on expected failure paths; fallible operations
// return util::Status (or util::StatusOr<T> when they also produce a value).

#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace oasis {
namespace util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kCorruption,
  kOutOfRange,
  kNotSupported,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
  kUnavailable,
};

/// Result of a fallible operation: a code plus a human-readable message.
/// Cheap to copy in the OK case (no allocation), explicit everywhere else.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const { return code_ == StatusCode::kDeadlineExceeded; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Analogous to
/// absl::StatusOr / arrow::Result.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from value: `return value;` works in StatusOr-returning code.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: `return Status::IOError(...)` works.
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() && "StatusOr must not hold OK without value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(rep_);
  }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace util
}  // namespace oasis

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define OASIS_RETURN_NOT_OK(expr)                    \
  do {                                               \
    ::oasis::util::Status _st = (expr);              \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Assigns the value of a StatusOr expression to `lhs`, or returns its error.
#define OASIS_ASSIGN_OR_RETURN(lhs, rexpr)           \
  auto OASIS_CONCAT_(_statusor_, __LINE__) = (rexpr);          \
  if (!OASIS_CONCAT_(_statusor_, __LINE__).ok())               \
    return OASIS_CONCAT_(_statusor_, __LINE__).status();       \
  lhs = std::move(OASIS_CONCAT_(_statusor_, __LINE__)).value()

#define OASIS_CONCAT_IMPL_(a, b) a##b
#define OASIS_CONCAT_(a, b) OASIS_CONCAT_IMPL_(a, b)
