#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace oasis {
namespace util {

namespace {
std::atomic<int> g_level{-1};

int InitLevelFromEnv() {
  const char* env = std::getenv("OASIS_LOG_LEVEL");
  if (env != nullptr && env[0] >= '0' && env[0] <= '4' && env[1] == '\0') {
    return env[0] - '0';
  }
  return static_cast<int>(LogLevel::kInfo);
}
}  // namespace

LogLevel GetLogLevel() {
  int lvl = g_level.load(std::memory_order_relaxed);
  if (lvl < 0) {
    lvl = InitLevelFromEnv();
    g_level.store(lvl, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lvl);
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

namespace {
const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kFatal: return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace util
}  // namespace oasis
