// Minimal leveled logging plus CHECK macros (Google glog-style subset).

#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace oasis {
namespace util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo; override with the OASIS_LOG_LEVEL env var (0-4).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct LogMessageVoidify {
  // Lower precedence than << but higher than ?:.
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace util
}  // namespace oasis

#define OASIS_LOG_INTERNAL(level)                                            \
  ::oasis::util::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define OASIS_LOG(severity)                                                  \
  (::oasis::util::LogLevel::k##severity < ::oasis::util::GetLogLevel())      \
      ? (void)0                                                              \
      : ::oasis::util::internal::LogMessageVoidify() &                       \
            OASIS_LOG_INTERNAL(::oasis::util::LogLevel::k##severity)

/// Aborts with a message when `cond` is false. Active in all build types:
/// these guard invariants whose violation means memory corruption ahead.
#define OASIS_CHECK(cond)                                                    \
  (cond) ? (void)0                                                           \
         : ::oasis::util::internal::LogMessageVoidify() &                    \
               OASIS_LOG_INTERNAL(::oasis::util::LogLevel::kFatal)           \
                   << "Check failed: " #cond " "

#define OASIS_CHECK_EQ(a, b) OASIS_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define OASIS_CHECK_NE(a, b) OASIS_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define OASIS_CHECK_LE(a, b) OASIS_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define OASIS_CHECK_LT(a, b) OASIS_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define OASIS_CHECK_GE(a, b) OASIS_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define OASIS_CHECK_GT(a, b) OASIS_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "

#ifndef NDEBUG
#define OASIS_DCHECK(cond) OASIS_CHECK(cond)
#else
#define OASIS_DCHECK(cond) \
  while (false) OASIS_CHECK(cond)
#endif
