#include "core/heuristic.h"

#include <algorithm>

namespace oasis {
namespace core {

HeuristicVector::HeuristicVector(std::span<const seq::Symbol> query,
                                 const score::SubstitutionMatrix& matrix) {
  const size_t n = query.size();
  h_.assign(n + 1, 0);
  for (size_t i = n; i-- > 0;) {
    h_[i] = std::max<score::ScoreT>(
        0, h_[i + 1] + matrix.MaxScoreForResidue(query[i]));
  }
}

}  // namespace core
}  // namespace oasis
