// The OASIS heuristic vector (paper §3.1).
//
// h[i] is an upper bound on the best local-alignment score achievable by
// the query suffix q_{i+1..n} against *any* target. With non-positive gap
// scores the optimal completion never uses gaps, so
//
//     h[n] = 0,   h[i] = max(0, h[i+1] + max_b S(q_{i+1}, b))
//
// The max(0, ...) clamp keeps the bound admissible for residues whose best
// substitution score is negative (the completion may simply stop early);
// for matrices with positive diagonals it coincides with the paper's rule.

#pragma once

#include <span>
#include <vector>

#include "score/substitution_matrix.h"
#include "seq/alphabet.h"

namespace oasis {
namespace core {

/// Heuristic completion bounds for one query under one matrix.
class HeuristicVector {
 public:
  HeuristicVector(std::span<const seq::Symbol> query,
                  const score::SubstitutionMatrix& matrix);

  /// Upper bound for completing from query position i (0 <= i <= n).
  score::ScoreT operator[](size_t i) const { return h_[i]; }
  size_t size() const { return h_.size(); }

  /// h[0]: the best score any alignment of this query can reach.
  score::ScoreT max_possible() const { return h_[0]; }

  /// Raw contiguous access for hot loops.
  const score::ScoreT* data() const { return h_.data(); }

 private:
  std::vector<score::ScoreT> h_;
};

}  // namespace core
}  // namespace oasis
