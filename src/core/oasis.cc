#include "core/oasis.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "util/logging.h"

namespace oasis {
namespace core {

using score::kNegInf;
using score::ScoreT;

namespace internal {

enum class NodeStatus : uint8_t { kViable, kAccepted, kUnviable };

/// A search node (paper §3): mirrors one suffix-tree node.
struct SearchNode {
  suffix::PackedNodeRef st;     ///< corresponding suffix-tree node
  uint32_t depth = 0;           ///< path depth in residues
  NodeStatus status = NodeStatus::kViable;
  ScoreT f = 0;                 ///< queue priority (see header)
  ScoreT max_score = 0;         ///< strongest alignment found on this path
  uint32_t best_q = 0;          ///< query end (1-based) of max_score
  uint32_t best_depth = 0;      ///< path depth of max_score
  /// Child pointers of the packed record, captured at expansion time so a
  /// viable node's children can be walked without re-reading its record.
  uint32_t first_internal = suffix::kNone;
  uint32_t first_leaf = suffix::kNone;
  std::vector<ScoreT> B;        ///< DP column (empty for accepted/leaf nodes)
};

/// Priority queue entry; nodes live in an arena and are referenced by
/// index so the heap stays small.
struct QueueEntry {
  ScoreT f;
  uint32_t depth;
  uint32_t node;  ///< arena index
};

struct QueueLess {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    // Max-heap on f; deeper nodes first among ties (reaches accepts
    // sooner without affecting correctness).
    if (a.f != b.f) return a.f < b.f;
    return a.depth < b.depth;
  }
};

/// Min-heap order on per-sequence-adjusted E-values (E-value-ordered
/// emission mode).
struct CandidateGreater {
  bool operator()(const OasisResult& a, const OasisResult& b) const {
    if (a.evalue != b.evalue) return a.evalue > b.evalue;
    return a.sequence_id > b.sequence_id;
  }
};

/// The resumable state of one search: Algorithm 1 cut at its emission
/// points. Init() performs Algorithm 2; each Step() pops one queue head
/// (one expansion or one accept); Next() steps until the pending buffer
/// holds a proven next-best result and hands it out. OasisCursor is a thin
/// pimpl shell over this class, and the callback Search() drives the same
/// stepper, so the pull and push streams are identical by construction.
class SearchRun {
 public:
  SearchRun(const suffix::PackedSuffixTree& tree,
            const score::SubstitutionMatrix& matrix,
            std::span<const seq::Symbol> query, const OasisOptions& options)
      : tree_(tree),
        cursor_(&tree, options.use_fetch_memo),
        matrix_(matrix),
        query_storage_(query.begin(), query.end()),
        query_(query_storage_),
        options_(options),
        h_(query_, matrix) {}

  /// Algorithm 2: prime the queue with the root node. May already finish
  /// the search (no alignment of this query can reach minScore).
  util::Status Init() {
    OASIS_CHECK_GE(options_.min_score, 1);
    reported_.assign(tree_.num_sequences(), false);

    if (options_.order_by_evalue) {
      if (options_.karlin.lambda <= 0.0 || options_.karlin.K <= 0.0) {
        return util::Status::InvalidArgument(
            "order_by_evalue requires valid KarlinParams in options");
      }
      // Shortest sequence length: lower-bounds every per-sequence E.
      min_seq_len_ = ~0ull;
      for (uint32_t s = 0; s < tree_.num_sequences(); ++s) {
        uint64_t len = tree_.TerminatorPos(s) - tree_.SequenceStart(s);
        min_seq_len_ = std::min(min_seq_len_, len);
      }
    }

    // Query profile: profile_[t * (n+1) + i] = S(q_i, t), so the expansion
    // inner loop reads one contiguous row per arc symbol instead of
    // indexing the matrix per cell.
    const size_t n = query_.size();
    const uint32_t sigma = matrix_.size();
    profile_.assign(static_cast<size_t>(sigma) * (n + 1), 0);
    for (uint32_t t = 0; t < sigma; ++t) {
      for (size_t i = 1; i <= n; ++i) {
        profile_[t * (n + 1) + i] = matrix_.Score(query_[i - 1], t);
      }
    }

    // Root node: empty path, B[i] = 0 wherever a completion could reach
    // minScore, else pruned.
    SearchNode root;
    root.st = cursor_.Root();
    root.depth = 0;
    {
      OASIS_ASSIGN_OR_RETURN(suffix::PackedInternalNode rec,
                             tree_.ReadInternal(0, cursor_.memo()));
      root.first_internal = rec.first_internal;
      root.first_leaf = rec.first_leaf;
    }
    root.B.assign(query_.size() + 1, kNegInf);
    ScoreT root_f = kNegInf;
    for (size_t i = 0; i <= query_.size(); ++i) {
      if (h_[i] >= options_.min_score || options_.disable_rule3_pruning) {
        root.B[i] = 0;
        root_f = std::max(root_f, h_[i]);
      }
    }
    if (root_f < options_.min_score && !options_.disable_rule3_pruning) {
      // No alignment of this query can reach the threshold.
      done_ = true;
      return util::Status::OK();
    }
    root.f = root_f;
    root.status = NodeStatus::kViable;
    Push(std::move(root));
    return util::Status::OK();
  }

  /// Advances the main loop (Algorithm 1) until the next proven result is
  /// available, and returns it; std::nullopt once the search is complete.
  /// Drops the fetch memo's pinned pool pages (no-op without a memo).
  /// Called whenever control is about to return to the consumer: a
  /// suspended cursor must hold zero pool frames, or N idle cursors
  /// could pin a small pool solid. The memo refills on the first read
  /// after resumption.
  void ReleaseTransientPins() {
    if (cursor_.memo() != nullptr) cursor_.memo()->Clear();
  }

  util::StatusOr<std::optional<OasisResult>> Next() {
    struct PinReleaser {
      SearchRun* run;
      ~PinReleaser() { run->ReleaseTransientPins(); }
    } release_pins{this};
    // A poll abort is a sticky terminal: every later Next() reports the
    // same status, so a consumer that sees DeadlineExceeded once cannot
    // accidentally resume the search by calling again.
    if (!abort_status_.ok()) return abort_status_;
    while (pending_.empty() && !done_) {
      // Suspension-point check (deadline / cancellation): only consulted
      // while the search must advance — already-proven pending results
      // drain before an abort is ever seen.
      if (options_.poll) {
        util::Status poll_status = options_.poll();
        if (!poll_status.ok()) {
          AbortWith(poll_status);
          return poll_status;
        }
      }
      if (queue_.empty()) {
        // Frontier exhausted; in E-value mode the held-back candidates
        // drain unconditionally now.
        if (options_.order_by_evalue) OASIS_RETURN_NOT_OK(FlushCandidates());
        done_ = true;
        break;
      }
      OASIS_RETURN_NOT_OK(Step());
    }
    if (!pending_.empty()) {
      // results_emitted counts *delivered* results: for a run drained to
      // completion it equals the legacy callback count, and for an
      // abandoned cursor it does not include proven-but-never-pulled
      // results sitting in pending_.
      ++stats_.results_emitted;
      OasisResult result = std::move(pending_.front());
      pending_.pop_front();
      return std::optional<OasisResult>(std::move(result));
    }
    return std::optional<OasisResult>();
  }

  bool done() const { return done_ && pending_.empty(); }
  const OasisStats& stats() const { return stats_; }

 private:
  /// One iteration of Algorithm 1: pop the queue head; an accepted node
  /// emits its alignments, a viable node expands its children.
  util::Status Step() {
    stats_.max_queue_size =
        std::max<uint64_t>(stats_.max_queue_size, queue_.size());
    QueueEntry top = queue_.top();
    queue_.pop();
    SearchNode node = std::move(arena_[top.node]);
    ReleaseSlot(top.node);

    if (node.status == NodeStatus::kAccepted) {
      OASIS_RETURN_NOT_OK(Report(node));
    } else {
      OASIS_RETURN_NOT_OK(ExpandChildren(node));
    }
    if (options_.order_by_evalue && !done_) {
      OASIS_RETURN_NOT_OK(FlushCandidates());
    }
    return util::Status::OK();
  }

  // --- E-value-ordered emission (paper §4.3 sketch) -------------------------
  //
  // Pending results are held back until no node on the frontier could
  // produce a lower per-sequence-adjusted E-value: any future candidate
  // reaches at most score f(head) on a sequence of at least min_seq_len_
  // residues, so its E is at least EValue(f(head), min_seq_len_).

  double SequenceEValue(ScoreT s, uint64_t seq_len) const {
    return score::EValueForScore(options_.karlin, s, query_.size(), seq_len);
  }

  util::Status FlushCandidates() {
    while (!candidates_.empty()) {
      if (!queue_.empty()) {
        double frontier_floor =
            SequenceEValue(queue_.top().f, min_seq_len_);
        if (candidates_.top().evalue > frontier_floor) break;
      }
      OasisResult result = candidates_.top();
      candidates_.pop();
      Emit(std::move(result));
      if (done_) break;
    }
    return util::Status::OK();
  }

  /// Expands every suffix-tree child of a viable node: the contiguous
  /// internal-sibling run, then the leaf chain (paper §3.4 layout).
  util::Status ExpandChildren(const SearchNode& node) {
    suffix::ChildArc arc;
    if (node.first_internal != suffix::kNone) {
      uint32_t idx = node.first_internal;
      while (true) {
        OASIS_ASSIGN_OR_RETURN(suffix::PackedInternalNode child,
                               tree_.ReadInternal(idx, cursor_.memo()));
        arc.node = suffix::PackedNodeRef::Internal(idx);
        arc.depth = child.depth();
        arc.arc_len = child.depth() - node.depth;
        arc.arc_start = child.sym_offset;
        OASIS_RETURN_NOT_OK(ExpandInto(node, arc, &child));
        if (child.last_sibling()) break;
        ++idx;
      }
    }
    uint32_t leaf = node.first_leaf;
    while (leaf != suffix::kNone) {
      uint64_t term = tree_.TerminatorPos(tree_.SequenceOf(leaf));
      uint64_t label_start = static_cast<uint64_t>(leaf) + node.depth;
      arc.node = suffix::PackedNodeRef::Leaf(leaf);
      arc.arc_start = label_start;
      arc.arc_len = static_cast<uint32_t>(term - label_start);
      arc.depth = node.depth + arc.arc_len;
      OASIS_RETURN_NOT_OK(ExpandInto(node, arc, nullptr));
      OASIS_ASSIGN_OR_RETURN(leaf, tree_.ReadLeafNext(leaf, cursor_.memo()));
    }
    return util::Status::OK();
  }

  util::Status ExpandInto(const SearchNode& parent, const suffix::ChildArc& arc,
                          const suffix::PackedInternalNode* rec) {
    OASIS_ASSIGN_OR_RETURN(SearchNode child, Expand(parent, arc));
    if (child.status == NodeStatus::kUnviable) {
      ++stats_.nodes_unviable;
      return util::Status::OK();
    }
    if (rec != nullptr) {
      child.first_internal = rec->first_internal;
      child.first_leaf = rec->first_leaf;
    }
    Push(std::move(child));
    return util::Status::OK();
  }

  // --- Arena / queue management -------------------------------------------

  void Push(SearchNode&& node) {
    if (node.status == NodeStatus::kAccepted) {
      ++stats_.nodes_accepted;
    } else {
      ++stats_.nodes_viable;
    }
    uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      arena_[slot] = std::move(node);
    } else {
      slot = static_cast<uint32_t>(arena_.size());
      arena_.push_back(std::move(node));
    }
    queue_.push(QueueEntry{arena_[slot].f, arena_[slot].depth, slot});
  }

  void ReleaseSlot(uint32_t slot) {
    // Recycle the B storage through the expansion scratch pool so arena
    // reuse does not reallocate.
    if (arena_[slot].B.capacity() > 0) {
      b_pool_.push_back(std::move(arena_[slot].B));
    }
    free_slots_.push_back(slot);
  }

  std::vector<ScoreT> TakeColumnStorage(size_t n) {
    if (!b_pool_.empty()) {
      std::vector<ScoreT> v = std::move(b_pool_.back());
      b_pool_.pop_back();
      v.resize(n);
      return v;
    }
    return std::vector<ScoreT>(n);
  }

  // --- Expansion (Algorithm 3) ----------------------------------------------

  util::StatusOr<SearchNode> Expand(const SearchNode& parent,
                                    const suffix::ChildArc& arc) {
    ++stats_.nodes_expanded;
    const size_t n = query_.size();
    const ScoreT gap = matrix_.gap_penalty();
    const ScoreT min_score = options_.min_score;

    SearchNode node;
    node.st = arc.node;
    node.depth = arc.depth;
    node.max_score = parent.max_score;
    node.best_q = parent.best_q;
    node.best_depth = parent.best_depth;

    // Arc labels are fetched lazily in chunks: leaf arcs can run to the end
    // of their sequence, but expansion usually terminates after a few
    // columns, so reading the whole label up front is wasted work.
    constexpr uint32_t kArcChunk = 32;
    uint32_t buffered = 0;

    const std::vector<ScoreT>* prev = &parent.B;
    std::vector<ScoreT>& cur = col_buf_;
    cur.resize(n + 1);
    std::vector<ScoreT>& keep = node.B;  // filled at the end if viable

    ScoreT h_col = kNegInf;  // completion bound of the last filled column
    for (uint32_t j = 0; j < arc.arc_len; ++j) {
      if (j == buffered) {
        uint32_t chunk = std::min(kArcChunk, arc.arc_len - buffered);
        OASIS_RETURN_NOT_OK(
            cursor_.ReadArcSymbols(arc.arc_start + buffered, chunk, &chunk_buf_));
        if (buffered == 0) {
          arc_buf_.swap(chunk_buf_);
        } else {
          arc_buf_.insert(arc_buf_.end(), chunk_buf_.begin(), chunk_buf_.end());
        }
        buffered += chunk;
      }
      const seq::Symbol t = arc_buf_[j];
      OASIS_DCHECK(t != suffix::kTerminatorByte);
      ++stats_.columns_expanded;
      stats_.cells_computed += n + 1;
      h_col = kNegInf;

      // Row 0: the empty query prefix can only delete target symbols;
      // always <= gap < 0, so it is pruned by rule 1. (Starting the
      // alignment later in the target is covered by a sibling path.)
      cur[0] = kNegInf;

      // Branch-light inner loop. kNegInf is INT_MIN/4, so adding a score
      // or gap to a pruned cell stays deeply negative and is re-pruned by
      // the v <= 0 rule; no explicit sentinel checks are needed.
      const ScoreT* prof = profile_.data() + static_cast<size_t>(t) * (n + 1);
      const ScoreT* p = prev->data();
      const ScoreT* h = h_.data();
      ScoreT* c = cur.data();
      // Ablation switches hoisted into predictable locals; rule 3 off is
      // expressed as an unreachable threshold.
      const bool rule2_on = !options_.disable_rule2_pruning;
      const ScoreT rule3_min =
          options_.disable_rule3_pruning ? ScoreT{kNegInf / 2} : min_score;
      ScoreT left = kNegInf;
      ScoreT maxs = node.max_score;
      for (size_t i = 1; i <= n; ++i) {
        ScoreT v = p[i - 1] + prof[i];
        v = std::max(v, p[i] + gap);
        v = std::max(v, left + gap);
        const ScoreT bound = v + h[i];
        // Pruning rules 1-3 (§3.2).
        if (v <= 0 || (rule2_on && bound <= maxs) || bound < rule3_min) {
          c[i] = kNegInf;
          left = kNegInf;
          continue;
        }
        c[i] = v;
        left = v;
        if (v > maxs) {
          maxs = v;
          node.best_q = static_cast<uint32_t>(i);
          node.best_depth = parent.depth + j + 1;
        }
        if (bound > h_col) h_col = bound;
      }
      node.max_score = maxs;

      // Early termination checks after each column.
      if (node.max_score >= h_col) {
        // Nothing below can beat what this path already found.
        node.status = node.max_score >= min_score ? NodeStatus::kAccepted
                                                  : NodeStatus::kUnviable;
        node.f = node.max_score;
        return node;
      }
      if (h_col < min_score && !options_.disable_rule3_pruning) {
        node.status = NodeStatus::kUnviable;
        return node;
      }
      if (h_col == kNegInf) {
        // Every cell pruned: nothing to extend regardless of ablation.
        node.status = NodeStatus::kUnviable;
        return node;
      }
      // Roll the column.
      if (j == 0) {
        keep = TakeColumnStorage(n + 1);
        keep.assign(cur.begin(), cur.end());
        prev = &keep;
        std::swap(cur, swap_buf_);
        cur.resize(n + 1);
      } else {
        std::swap(keep, cur);
        prev = &keep;
      }
    }

    if (arc.arc_len == 0) {
      // Terminator-only leaf arc: the node contributes no new columns; its
      // value is the path's existing best (paper: "set f and s to the
      // maximum value seen along the path").
      h_col = node.max_score;
      keep = parent.B;
    }

    if (arc.node.is_leaf) {
      // The path ends at a terminator; no extension is possible.
      node.status = node.max_score >= min_score ? NodeStatus::kAccepted
                                                : NodeStatus::kUnviable;
      node.f = node.max_score;
      node.B.clear();
      return node;
    }

    // Internal node, arc fully processed, improvements still possible.
    node.status = NodeStatus::kViable;
    node.f = h_col;
    // Rule 3 is what guarantees viable nodes carry f >= min_score; with the
    // ablation flag set, nodes below the threshold legitimately stay viable
    // (they are filtered at accept time instead), so the invariant only
    // holds when the rule is active.
    OASIS_DCHECK(node.f >= min_score || options_.disable_rule3_pruning);
    return node;
  }

  // --- Online reporting (Algorithm 1's accept branch) -----------------------

  util::Status Report(const SearchNode& node) {
    // Every leaf below this node is an occurrence of the path, and the
    // path carries the alignment of score node.f ending at best_depth.
    leaf_buf_.clear();
    OASIS_RETURN_NOT_OK(cursor_.CollectLeafPositions(node.st, &leaf_buf_));
    for (uint64_t leaf : leaf_buf_) {
      uint32_t sid = tree_.SequenceOf(leaf);
      if (!options_.all_alignments) {
        if (reported_[sid]) continue;
        reported_[sid] = true;
      }
      OasisResult result;
      result.sequence_id = sid;
      result.score = node.f;
      result.db_end_pos = leaf + node.best_depth - 1;
      result.target_end = result.db_end_pos - tree_.SequenceStart(sid);
      result.query_end = node.best_q - 1;
      if (options_.reconstruct_alignments) {
        OASIS_RETURN_NOT_OK(Reconstruct(leaf, node, &result));
      }
      if (options_.order_by_evalue) {
        uint64_t seq_len = tree_.TerminatorPos(sid) - tree_.SequenceStart(sid);
        result.evalue = SequenceEValue(result.score, seq_len);
        candidates_.push(std::move(result));
      } else {
        Emit(std::move(result));
        if (done_) return util::Status::OK();
      }
    }
    return util::Status::OK();
  }

  /// Hands a proven result to the consumer (the pending buffer Next()
  /// drains) and decides whether the search is complete.
  void Emit(OasisResult result) {
    ++num_produced_;
    if (!options_.all_alignments) ++num_reported_;
    pending_.push_back(std::move(result));
    if (options_.max_results != 0 && num_produced_ >= options_.max_results) {
      done_ = true;
      return;
    }
    // Paper §3.3: "in a multi-sequence tree, we would continue the search
    // in order to identify maximal alignments for all sequences" — once
    // every sequence has its maximal alignment, nothing further can be
    // emitted in per-sequence mode, so the search is complete. (In
    // E-value-ordered mode pending candidates must still drain first.)
    if (!options_.all_alignments && num_reported_ == reported_.size() &&
        candidates_.empty()) {
      done_ = true;
    }
  }

  /// Terminates the search in response to a poll abort: the frontier, the
  /// held-back candidates, and any not-yet-pulled pending results are all
  /// dropped (partial results already delivered stand), and the status is
  /// latched so every later Next() re-reports it.
  void AbortWith(util::Status status) {
    abort_status_ = std::move(status);
    done_ = true;
    // Free the search state eagerly; an aborted cursor may be held a while
    // before destruction (e.g. a server draining a session registry).
    queue_ = {};
    arena_.clear();
    free_slots_.clear();
    pending_.clear();
    candidates_ = {};
  }

  util::Status Reconstruct(uint64_t leaf, const SearchNode& node,
                           OasisResult* result) const {
    // Re-run the pinned DP over the path prefix that carries the best cell.
    std::vector<uint8_t> bytes;
    OASIS_RETURN_NOT_OK(tree_.ReadSymbols(leaf, node.best_depth, &bytes,
                                          storage::Admission::kNormal,
                                          cursor_.memo()));
    std::vector<seq::Symbol> path(bytes.begin(), bytes.end());
    align::Alignment aln =
        align::TracebackPathPinned(query_, path, matrix_);
    OASIS_CHECK_EQ(aln.score, node.f)
        << "traceback disagrees with search score";
    // Shift target coordinates from path-local to sequence-local.
    uint64_t seq_start = tree_.SequenceStart(result->sequence_id);
    aln.target_start += leaf - seq_start;
    aln.target_end += leaf - seq_start;
    result->alignment = std::move(aln);
    return util::Status::OK();
  }

  const suffix::PackedSuffixTree& tree_;
  suffix::TreeCursor cursor_;
  const score::SubstitutionMatrix& matrix_;
  std::vector<seq::Symbol> query_storage_;  ///< owned; cursor outlives caller
  std::span<const seq::Symbol> query_;
  const OasisOptions options_;
  HeuristicVector h_;

  std::vector<SearchNode> arena_;
  std::vector<uint32_t> free_slots_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, QueueLess> queue_;
  std::vector<bool> reported_;
  size_t num_reported_ = 0;
  uint64_t num_produced_ = 0;  ///< results proven (pending_ + delivered)
  OasisStats stats_;
  bool done_ = false;
  /// Non-OK once a poll abort fired; sticky (see Next()).
  util::Status abort_status_ = util::Status::OK();

  /// Results proven next-best but not yet pulled through Next().
  std::deque<OasisResult> pending_;

  // E-value-ordered emission state.
  std::priority_queue<OasisResult, std::vector<OasisResult>, CandidateGreater>
      candidates_;
  uint64_t min_seq_len_ = 1;

  // Scratch buffers reused across expansions.
  mutable std::vector<uint8_t> arc_buf_;
  mutable std::vector<uint8_t> chunk_buf_;
  std::vector<ScoreT> col_buf_;
  std::vector<ScoreT> swap_buf_;
  std::vector<uint64_t> leaf_buf_;
  std::vector<std::vector<ScoreT>> b_pool_;  ///< recycled B-column storage
  std::vector<ScoreT> profile_;  ///< query profile, sigma rows of n+1
};

}  // namespace internal

// --- OasisCursor (pimpl over internal::SearchRun) ---------------------------

OasisCursor::OasisCursor(std::unique_ptr<internal::SearchRun> run)
    : run_(std::move(run)) {}
OasisCursor::OasisCursor(OasisCursor&&) noexcept = default;
OasisCursor& OasisCursor::operator=(OasisCursor&&) noexcept = default;
OasisCursor::~OasisCursor() = default;

util::StatusOr<std::optional<OasisResult>> OasisCursor::Next() {
  OASIS_CHECK(run_ != nullptr) << "Next() on a moved-from cursor";
  return run_->Next();
}

bool OasisCursor::done() const { return run_ == nullptr || run_->done(); }

const OasisStats& OasisCursor::stats() const {
  OASIS_CHECK(run_ != nullptr) << "stats() on a moved-from cursor";
  return run_->stats();
}

// --- OasisSearch ------------------------------------------------------------

OasisSearch::OasisSearch(const suffix::PackedSuffixTree* tree,
                         const score::SubstitutionMatrix* matrix)
    : tree_(tree), matrix_(matrix) {
  OASIS_CHECK(tree != nullptr && matrix != nullptr);
  OASIS_CHECK_EQ(tree->alphabet_size(), matrix->size())
      << "matrix alphabet must match the indexed database";
}

util::StatusOr<OasisCursor> OasisSearch::Cursor(
    std::span<const seq::Symbol> query, const OasisOptions& options) const {
  if (query.empty()) {
    return util::Status::InvalidArgument("query must be non-empty");
  }
  if (options.min_score < 1) {
    return util::Status::InvalidArgument("min_score must be >= 1");
  }
  for (seq::Symbol s : query) {
    if (s >= matrix_->size()) {
      return util::Status::InvalidArgument("query contains invalid residue code");
    }
  }
  auto run = std::make_unique<internal::SearchRun>(*tree_, *matrix_, query,
                                                   options);
  OASIS_RETURN_NOT_OK(run->Init());
  // Same zero-pins-while-suspended rule as Next(): the cursor may sit
  // unused arbitrarily long between Init and the first pull.
  run->ReleaseTransientPins();
  return OasisCursor(std::move(run));
}

util::StatusOr<OasisStats> OasisSearch::Search(
    std::span<const seq::Symbol> query, const OasisOptions& options,
    const ResultCallback& callback) const {
  OASIS_ASSIGN_OR_RETURN(OasisCursor cursor, Cursor(query, options));
  while (true) {
    OASIS_ASSIGN_OR_RETURN(std::optional<OasisResult> next, cursor.Next());
    if (!next.has_value()) break;
    if (!callback(*next)) break;  // consumer abort: stop pulling
  }
  return cursor.stats();
}

util::StatusOr<std::vector<OasisResult>> OasisSearch::SearchAll(
    std::span<const seq::Symbol> query, const OasisOptions& options,
    OasisStats* stats) const {
  std::vector<OasisResult> results;
  OASIS_ASSIGN_OR_RETURN(OasisStats st,
                         Search(query, options, [&](const OasisResult& r) {
                           results.push_back(r);
                           return true;
                         }));
  if (stats != nullptr) *stats = st;
  return results;
}

score::ScoreT OasisSearch::MinScoreForEValue(const score::KarlinParams& karlin,
                                             double evalue,
                                             uint64_t query_len) const {
  uint64_t db_residues = tree_->total_length() - tree_->num_sequences();
  return score::MinScoreForEValue(karlin, evalue, query_len, db_residues);
}

}  // namespace core
}  // namespace oasis
