// Human-readable rendering of OASIS results (used by examples and the
// benchmark harnesses).

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/oasis.h"
#include "seq/database.h"

namespace oasis {
namespace core {

/// One-line summary: "seq <id> score=<s> E=<e> q[..] t[..]".
/// `evalue` < 0 suppresses the E-value field.
std::string FormatResult(const OasisResult& result,
                         const seq::SequenceDatabase& db, double evalue = -1.0);

/// FormatResult with an explicit sequence label — for callers that label
/// results from an index-resident catalog instead of a loaded database.
std::string FormatResult(const OasisResult& result,
                         std::string_view sequence_name, double evalue = -1.0);

/// Multi-line rendering including the pretty alignment when present.
std::string FormatResultVerbose(const OasisResult& result,
                                const seq::SequenceDatabase& db,
                                std::span<const seq::Symbol> query);

}  // namespace core
}  // namespace oasis
