// OASIS: Online and Accurate Search technique for Inferring local
// alignments on Sequences (paper §3, Algorithms 1-3).
//
// A best-first (A*) search over the packed suffix tree. Each search node
// mirrors a suffix-tree node and carries:
//   B         one DP column: B[i] = best score of an alignment of some
//             query substring ending at q_i against the *entire* path
//             label (target start pinned at the path start; every target
//             start is enumerated by a different tree path, which is why
//             the S-W reset-to-zero is absent — §3.2);
//   MaxScore  the strongest alignment score found anywhere along the path;
//   f         an optimistic completion bound: max_i(B[i] + h[i]) for
//             viable nodes, == MaxScore for accepted nodes.
//
// Expansion fills the DP columns of a child arc, applying the three
// pruning rules of §3.2:
//   1. non-positive cells (covered by the sibling path that starts later);
//   2. cells whose optimistic completion cannot beat MaxScore (an equal or
//      better alignment already exists on this path);
//   3. cells whose optimistic completion cannot reach minScore.
// A node whose MaxScore can no longer be beaten anywhere below it is
// ACCEPTED; when an accepted node reaches the head of the f-ordered queue,
// its alignment is guaranteed to be the global next-best, so it is emitted
// immediately — the online property.
//
// Reporting duplicates S-W behaviour (the paper's mode): one strongest
// alignment per database sequence, in non-increasing score order.

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "align/traceback.h"
#include "core/heuristic.h"
#include "score/karlin.h"
#include "score/substitution_matrix.h"
#include "suffix/tree_cursor.h"
#include "util/status.h"

namespace oasis {
namespace core {

/// Search configuration.
struct OasisOptions {
  /// Minimum alignment score; all alignments with score >= minScore are
  /// found (must be >= 1: local alignments have positive scores).
  score::ScoreT min_score = 1;

  /// Stop after this many results have been emitted (0 = unlimited). The
  /// online ordering guarantees these are the true top-k.
  uint64_t max_results = 0;

  /// When true, reconstruct the full alignment (operations + coordinates)
  /// for each emitted result via the pinned-path traceback.
  bool reconstruct_alignments = false;

  /// Report every accepted alignment location instead of only the best per
  /// sequence (extension beyond the paper's reporting mode). Each sequence
  /// is still reported at most once per distinct accepted node.
  bool all_alignments = false;

  /// Order the result stream by per-sequence-adjusted E-value instead of
  /// raw score (the paper's §4.3 sketch: sort the queue by an optimistic
  /// E-value; on acceptance, re-key each sequence with its non-optimistic
  /// E adjusted for the actual sequence length). With a fixed query, the
  /// optimistic E is monotone in score, so the search order is unchanged;
  /// only the emission order of near-tied results across sequences of very
  /// different lengths differs. Requires `karlin` to be set.
  bool order_by_evalue = false;
  score::KarlinParams karlin;

  /// Route this search's tree reads through a per-search fetch memo
  /// (suffix::TreeCursor's per-thread (segment, block) → page cache):
  /// consecutive same-block reads — sibling runs in the level-first
  /// layout — skip the buffer pool entirely. Results are identical either
  /// way; only the pool traffic changes, which is why this defaults to
  /// off at this layer: callers measuring the paper's buffer statistics
  /// (the Figure 7/8 benches) see unchanged numbers, while api::Engine
  /// turns it on for pooled engines (EngineOptions::fetch_memo). A no-op
  /// over mapped trees.
  bool use_fetch_memo = false;

  /// Polled once per queue pop of the resumable stepper — i.e. at every
  /// suspension point of the A* loop, the same granularity OasisCursor
  /// resumes at. Returning a non-OK status (typically DeadlineExceeded or
  /// Cancelled) aborts the search: results already proven and handed out
  /// stand as the partial stream, every pinned pool frame is released
  /// before control returns, and the cursor's Next() reports the status —
  /// then keeps reporting it (a sticky terminal). The check is only
  /// reached while the cursor must advance, so a stream whose remaining
  /// results are already proven drains them before the abort is seen.
  /// Null (the default) costs one branch per pop — the undeadlined path
  /// stays the paper's loop.
  std::function<util::Status()> poll;

  /// Ablation switches (bench/bench_ablation_pruning.cc): disable pruning
  /// rule 2 ("existing alignment as good", §3.2) or rule 3 ("threshold
  /// failure"). Results are unchanged — only more of the search space is
  /// explored. Rule 1 (non-positive cells) cannot be disabled: without it
  /// alignments are double-counted across sibling paths.
  bool disable_rule2_pruning = false;
  bool disable_rule3_pruning = false;
};

/// One emitted result.
struct OasisResult {
  uint32_t sequence_id = 0;
  score::ScoreT score = 0;
  /// Per-sequence-adjusted E-value; only set in order_by_evalue mode
  /// (negative otherwise).
  double evalue = -1.0;
  /// Global position (concatenated coordinates) where the alignment ends.
  uint64_t db_end_pos = 0;
  /// 0-based inclusive end within the sequence.
  uint64_t target_end = 0;
  /// 0-based inclusive end within the query.
  uint32_t query_end = 0;
  /// Filled when OasisOptions::reconstruct_alignments is set.
  std::optional<align::Alignment> alignment;
};

/// Search counters (Figure 4 compares columns_expanded against S-W).
struct OasisStats {
  uint64_t columns_expanded = 0;   ///< DP columns filled (arc symbols scored)
  uint64_t cells_computed = 0;
  uint64_t nodes_expanded = 0;     ///< Expand() invocations
  uint64_t nodes_viable = 0;
  uint64_t nodes_accepted = 0;
  uint64_t nodes_unviable = 0;     ///< pruned subtrees
  uint64_t results_emitted = 0;
  uint64_t max_queue_size = 0;
};

/// Callback invoked for each result as soon as it is proven next-best.
/// Return false to abort the search (the "scientist aborts after the top
/// few matches" use case).
using ResultCallback = std::function<bool(const OasisResult&)>;

namespace internal {
class SearchRun;
}  // namespace internal

/// A pull-based handle over one in-progress OASIS search: the A* loop of
/// Algorithm 1 made resumable. Each Next() call advances the search just
/// far enough to prove the next-best result and returns it; std::nullopt
/// signals exhaustion. Dropping the cursor (or simply not calling Next()
/// again) aborts the remaining search — the "scientist stops after the top
/// few matches" use case, with the consumer setting the pace.
///
/// The emitted stream is identical to the callback API: OasisSearch::Search
/// is implemented on top of this cursor, so the two can never diverge.
/// A cursor owns a copy of the query and options; the tree and matrix it
/// was created from must outlive it. Move-only, single-threaded.
class OasisCursor {
 public:
  OasisCursor(OasisCursor&&) noexcept;
  OasisCursor& operator=(OasisCursor&&) noexcept;
  ~OasisCursor();

  /// Advances to the next result. Returns std::nullopt when the search is
  /// complete (every qualifying alignment has been emitted, or the
  /// max_results cap was reached).
  util::StatusOr<std::optional<OasisResult>> Next();

  /// True once Next() has returned std::nullopt (or the search aborted).
  bool done() const;

  /// Statistics of the search so far; final once done().
  const OasisStats& stats() const;

 private:
  friend class OasisSearch;
  explicit OasisCursor(std::unique_ptr<internal::SearchRun> run);

  std::unique_ptr<internal::SearchRun> run_;
};

/// The OASIS search engine bound to one packed tree.
///
/// Stateless and const across Search()/Cursor() calls: all per-query state
/// lives in the SearchRun behind each cursor, and the tree and matrix are
/// only read. One instance can therefore serve a whole query workload, and
/// because the packed tree's read paths and the sharded buffer pool beneath
/// it are thread-safe (storage/buffer_pool.h), any number of threads may
/// run Search()/Cursor() concurrently on one shared instance — cache
/// warmth is shared across all of them (api::Engine::SearchBatch does
/// exactly this).
class OasisSearch {
 public:
  /// `tree` must outlive the searcher. The matrix alphabet must match the
  /// tree's alphabet.
  OasisSearch(const suffix::PackedSuffixTree* tree,
              const score::SubstitutionMatrix* matrix);

  /// Starts an incremental search and returns its pull cursor.
  util::StatusOr<OasisCursor> Cursor(std::span<const seq::Symbol> query,
                                     const OasisOptions& options) const;

  /// Runs the search, emitting results online through `callback` in
  /// non-increasing score order. Returns the statistics.
  util::StatusOr<OasisStats> Search(std::span<const seq::Symbol> query,
                                    const OasisOptions& options,
                                    const ResultCallback& callback) const;

  /// Convenience: collects all results into a vector.
  util::StatusOr<std::vector<OasisResult>> SearchAll(
      std::span<const seq::Symbol> query, const OasisOptions& options,
      OasisStats* stats = nullptr) const;

  /// Translates a BLAST E-value cutoff into the equivalent minScore for
  /// this database (paper Eq. 3).
  score::ScoreT MinScoreForEValue(const score::KarlinParams& karlin,
                                  double evalue, uint64_t query_len) const;

  const suffix::PackedSuffixTree& tree() const { return *tree_; }
  const score::SubstitutionMatrix& matrix() const { return *matrix_; }

 private:
  const suffix::PackedSuffixTree* tree_;
  const score::SubstitutionMatrix* matrix_;
};

}  // namespace core
}  // namespace oasis
