#include "core/merge.h"

#include <utility>

namespace oasis {
namespace core {

MergedOasisCursor::MergedOasisCursor(std::vector<MergeShard> shards,
                                     bool by_evalue, uint64_t max_results)
    : shards_(std::move(shards)),
      heads_(shards_.size()),
      by_evalue_(by_evalue),
      max_results_(max_results) {}

util::Status MergedOasisCursor::Refill(size_t i) {
  auto next_or = shards_[i].cursor.Next();
  if (!next_or.ok()) return next_or.status();
  heads_[i] = std::move(next_or).value();
  if (heads_[i].has_value()) {
    // Lift the volume-local result into set-wide coordinates. Scores,
    // per-sequence E-values, query/target ends and the reconstructed
    // alignment are all volume-independent and pass through.
    heads_[i]->sequence_id += shards_[i].id_base;
    heads_[i]->db_end_pos += shards_[i].pos_base;
  }
  return util::Status::OK();
}

void MergedOasisCursor::AggregateStats() {
  OasisStats total;
  for (const MergeShard& shard : shards_) {
    const OasisStats& s = shard.cursor.stats();
    total.columns_expanded += s.columns_expanded;
    total.cells_computed += s.cells_computed;
    total.nodes_expanded += s.nodes_expanded;
    total.nodes_viable += s.nodes_viable;
    total.nodes_accepted += s.nodes_accepted;
    total.nodes_unviable += s.nodes_unviable;
    total.results_emitted += s.results_emitted;
    total.max_queue_size += s.max_queue_size;
  }
  stats_ = total;
}

int MergedOasisCursor::BestHead() const {
  int best = -1;
  for (size_t i = 0; i < heads_.size(); ++i) {
    if (!heads_[i].has_value()) continue;
    if (best < 0) {
      best = static_cast<int>(i);
      continue;
    }
    const OasisResult& a = *heads_[i];
    const OasisResult& b = *heads_[best];
    bool wins;
    if (by_evalue_) {
      // Mirror the single-volume emission order: E-value ascending,
      // sequence id ascending among ties.
      wins = a.evalue < b.evalue ||
             (a.evalue == b.evalue && a.sequence_id < b.sequence_id);
    } else {
      wins = a.score > b.score ||
             (a.score == b.score && a.sequence_id < b.sequence_id);
    }
    if (wins) best = static_cast<int>(i);
  }
  return best;
}

util::StatusOr<std::optional<OasisResult>> MergedOasisCursor::Next() {
  if (!abort_status_.ok()) return abort_status_;
  if (done_) return std::optional<OasisResult>();
  if (!primed_) {
    // Lazy priming: the first Next() pays for one head per volume, so
    // merely constructing a merged cursor (and dropping it) costs no
    // search work — matching OasisCursor's contract.
    for (size_t i = 0; i < shards_.size(); ++i) {
      const util::Status status = Refill(i);
      if (!status.ok()) {
        AggregateStats();
        abort_status_ = status;
        done_ = true;
        return abort_status_;
      }
    }
    primed_ = true;
  }
  const int best = BestHead();
  if (best < 0) {
    AggregateStats();
    done_ = true;
    return std::optional<OasisResult>();
  }
  std::optional<OasisResult> out = std::move(heads_[best]);
  heads_[best].reset();
  const util::Status status = Refill(static_cast<size_t>(best));
  ++emitted_;
  AggregateStats();
  if (!status.ok()) {
    // The popped head is already proven and stands as part of the partial
    // stream; the shard's terminal status (deadline, cancellation, I/O)
    // becomes sticky and is reported from the next call on — the same
    // "results handed out stand" contract a single cursor keeps.
    abort_status_ = status;
    done_ = true;
    return out;
  }
  if (max_results_ != 0 && emitted_ >= max_results_) {
    // The cap applies to the merged stream; the shard cursors are simply
    // dropped (dropping an OasisCursor aborts its remaining search).
    done_ = true;
  }
  return out;
}

}  // namespace core
}  // namespace oasis
