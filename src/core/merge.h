// K-way merge of per-volume OASIS cursors into one globally ordered
// stream.
//
// Every volume's cursor emits its results in non-increasing score order
// (or non-decreasing E-value order in order_by_evalue mode) — the paper's
// online property, per volume. Merging streams with that invariant is a
// classic k-way merge: hold one head result per volume, emit the best
// head, refill from the volume it came from. The emitted stream carries
// the same invariant over the whole set, so a multi-volume search is
// exactly as online as a single-volume one: each Next() advances only the
// volume that must prove its next result.
//
// The merge also performs the local->global coordinate translation: a
// volume's results are in its own id/position space, and the shard's
// bases (first global sequence id, global offset of the volume's
// concatenation) lift them into set-wide coordinates on the way out.
// Per-sequence E-values depend only on the sequence's own length, so they
// need no adjustment; alignments carry sequence-local coordinates and
// pass through untouched.
//
// Ties across volumes break toward the smaller global sequence id, the
// same tie-break E-value-ordered emission uses within one volume.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/oasis.h"
#include "util/status.h"

namespace oasis {
namespace core {

/// One volume's contribution to a merged search: its live cursor plus the
/// offsets that lift its local ids/positions into set-wide coordinates.
struct MergeShard {
  OasisCursor cursor;     ///< the volume's in-progress search
  uint32_t id_base = 0;   ///< global id of the volume's first sequence
  uint64_t pos_base = 0;  ///< global position of its concatenation start
};

/// The merged pull stream. Move-only, single-threaded, same contract as
/// OasisCursor: Next() until std::nullopt, errors are terminal, dropping
/// the cursor aborts every underlying volume search.
class MergedOasisCursor {
 public:
  /// Merges `shards` (one per searched volume, in global order).
  /// `by_evalue` must match the OasisOptions the shard cursors run with;
  /// `max_results` caps the *merged* stream (the shard cursors themselves
  /// must run uncapped, or a volume could starve the global top-k).
  MergedOasisCursor(std::vector<MergeShard> shards, bool by_evalue,
                    uint64_t max_results);
  MergedOasisCursor(MergedOasisCursor&&) noexcept = default;
  MergedOasisCursor& operator=(MergedOasisCursor&&) noexcept = default;

  /// The next globally best result, std::nullopt on exhaustion. A non-OK
  /// status (I/O error, deadline, cancellation — surfaced from whichever
  /// volume cursor hit it) is terminal: the merge stops and every later
  /// Next() returns the same status.
  util::StatusOr<std::optional<OasisResult>> Next();

  /// True once the merged stream is exhausted or aborted.
  bool done() const { return done_; }

  /// Aggregated statistics: the field-wise sum of every shard's counters
  /// (a set-wide search did all that work, whichever volume it landed in).
  const OasisStats& stats() const { return stats_; }

 private:
  /// Pulls shard `i`'s next head, translating it to global coordinates.
  util::Status Refill(size_t i);
  /// Re-sums stats_ from the shard cursors.
  void AggregateStats();
  /// Index of the best head, or -1 when all shards are exhausted.
  int BestHead() const;

  std::vector<MergeShard> shards_;
  std::vector<std::optional<OasisResult>> heads_;
  bool primed_ = false;
  bool by_evalue_ = false;
  uint64_t max_results_ = 0;
  uint64_t emitted_ = 0;
  bool done_ = false;
  util::Status abort_status_ = util::Status::OK();
  OasisStats stats_;
};

}  // namespace core
}  // namespace oasis
