#include "core/report.h"

#include <sstream>

namespace oasis {
namespace core {

std::string FormatResult(const OasisResult& result,
                         const seq::SequenceDatabase& db, double evalue) {
  return FormatResult(result, db.sequence(result.sequence_id).id(), evalue);
}

std::string FormatResult(const OasisResult& result,
                         std::string_view sequence_name, double evalue) {
  std::ostringstream out;
  out << sequence_name << " score=" << result.score;
  if (evalue >= 0.0) out << " E=" << evalue;
  out << " query_end=" << result.query_end
      << " target_end=" << result.target_end;
  return out.str();
}

std::string FormatResultVerbose(const OasisResult& result,
                                const seq::SequenceDatabase& db,
                                std::span<const seq::Symbol> query) {
  std::ostringstream out;
  out << FormatResult(result, db) << "\n";
  if (result.alignment.has_value()) {
    const align::Alignment& aln = *result.alignment;
    out << "  query  [" << aln.query_start << ", " << aln.query_end << "]\n";
    out << "  target [" << aln.target_start << ", " << aln.target_end << "]\n";
    out << "  cigar  " << aln.Cigar() << "\n";
    const seq::Sequence& target = db.sequence(result.sequence_id);
    std::string pretty =
        aln.Pretty(db.alphabet(), query, target.symbols());
    std::istringstream lines(pretty);
    std::string line;
    while (std::getline(lines, line)) out << "    " << line << "\n";
  }
  return out.str();
}

}  // namespace core
}  // namespace oasis
