#include "align/traceback.h"

#include <algorithm>

#include "util/logging.h"

namespace oasis {
namespace align {

using score::kNegInf;
using score::ScoreT;

namespace {

// Backpointer codes for the DP matrices.
enum class Back : uint8_t { kNone, kRep, kIns, kDel };

Alignment WalkBack(const std::vector<std::vector<ScoreT>>& h,
                   const std::vector<std::vector<Back>>& back, size_t bi,
                   size_t bj, std::span<const seq::Symbol> query,
                   std::span<const seq::Symbol> target) {
  Alignment out;
  out.score = h[bi][bj];
  size_t i = bi, j = bj;
  std::vector<Op> rev;
  while (i > 0 || j > 0) {
    Back b = back[i][j];
    if (b == Back::kNone) break;
    switch (b) {
      case Back::kRep:
        rev.push_back(query[i - 1] == target[j - 1] ? Op::kMatch : Op::kMismatch);
        --i;
        --j;
        break;
      case Back::kIns:
        rev.push_back(Op::kInsert);
        --i;
        break;
      case Back::kDel:
        rev.push_back(Op::kDelete);
        --j;
        break;
      case Back::kNone:
        break;
    }
  }
  out.ops.assign(rev.rbegin(), rev.rend());
  // i, j now index the cell *before* the first consumed symbol.
  out.query_start = i;  // 0-based first consumed query index == i
  out.target_start = j;
  out.query_end = bi == 0 ? 0 : bi - 1;
  out.target_end = bj == 0 ? 0 : bj - 1;
  return out;
}

}  // namespace

std::string Alignment::Cigar() const {
  std::string out;
  size_t run = 0;
  Op prev = Op::kMatch;
  auto flush = [&]() {
    if (run == 0) return;
    out += std::to_string(run);
    switch (prev) {
      case Op::kMatch: out += '='; break;
      case Op::kMismatch: out += 'X'; break;
      case Op::kInsert: out += 'I'; break;
      case Op::kDelete: out += 'D'; break;
    }
  };
  for (Op op : ops) {
    if (run > 0 && op == prev) {
      ++run;
    } else {
      flush();
      prev = op;
      run = 1;
    }
  }
  flush();
  return out;
}

std::string Alignment::Pretty(const seq::Alphabet& alphabet,
                              std::span<const seq::Symbol> query,
                              std::span<const seq::Symbol> target) const {
  std::string q_line, m_line, t_line;
  size_t qi = query_start, tj = target_start;
  for (Op op : ops) {
    switch (op) {
      case Op::kMatch:
      case Op::kMismatch:
        q_line += alphabet.CodeToChar(query[qi]);
        t_line += alphabet.CodeToChar(target[tj]);
        m_line += (op == Op::kMatch) ? '|' : '.';
        ++qi;
        ++tj;
        break;
      case Op::kInsert:
        q_line += alphabet.CodeToChar(query[qi]);
        t_line += '-';
        m_line += ' ';
        ++qi;
        break;
      case Op::kDelete:
        q_line += '-';
        t_line += alphabet.CodeToChar(target[tj]);
        m_line += ' ';
        ++tj;
        break;
    }
  }
  return q_line + "\n" + m_line + "\n" + t_line + "\n";
}

ScoreT Alignment::RecomputeScore(const score::SubstitutionMatrix& matrix,
                                 std::span<const seq::Symbol> query,
                                 std::span<const seq::Symbol> target) const {
  ScoreT total = 0;
  size_t qi = query_start, tj = target_start;
  for (Op op : ops) {
    switch (op) {
      case Op::kMatch:
      case Op::kMismatch:
        total += matrix.Score(query[qi], target[tj]);
        ++qi;
        ++tj;
        break;
      case Op::kInsert:
        total += matrix.gap_penalty();
        ++qi;
        break;
      case Op::kDelete:
        total += matrix.gap_penalty();
        ++tj;
        break;
    }
  }
  return total;
}

Alignment TracebackLocal(std::span<const seq::Symbol> query,
                         std::span<const seq::Symbol> target,
                         const score::SubstitutionMatrix& matrix) {
  const size_t m = query.size();
  const size_t n = target.size();
  const ScoreT gap = matrix.gap_penalty();
  std::vector<std::vector<ScoreT>> h(m + 1, std::vector<ScoreT>(n + 1, 0));
  std::vector<std::vector<Back>> back(m + 1,
                                      std::vector<Back>(n + 1, Back::kNone));
  size_t bi = 0, bj = 0;
  ScoreT best = 0;
  for (size_t i = 1; i <= m; ++i) {
    for (size_t j = 1; j <= n; ++j) {
      ScoreT rep = h[i - 1][j - 1] + matrix.Score(query[i - 1], target[j - 1]);
      ScoreT ins = h[i - 1][j] + gap;
      ScoreT del = h[i][j - 1] + gap;
      ScoreT v = std::max({ScoreT{0}, rep, ins, del});
      h[i][j] = v;
      if (v == 0) {
        back[i][j] = Back::kNone;
      } else if (v == rep) {
        back[i][j] = Back::kRep;
      } else if (v == ins) {
        back[i][j] = Back::kIns;
      } else {
        back[i][j] = Back::kDel;
      }
      if (v > best) {
        best = v;
        bi = i;
        bj = j;
      }
    }
  }
  if (best == 0) return Alignment{};
  return WalkBack(h, back, bi, bj, query, target);
}

Alignment TracebackPathPinned(std::span<const seq::Symbol> query,
                              std::span<const seq::Symbol> target,
                              const score::SubstitutionMatrix& matrix) {
  const size_t m = query.size();
  const size_t n = target.size();
  const ScoreT gap = matrix.gap_penalty();
  // DP of §3.2: row 0 (empty query prefix) decays by gaps from cell (0,0);
  // column 0 is 0 for every i (any query position may start the alignment);
  // no reset to zero inside the matrix.
  std::vector<std::vector<ScoreT>> h(m + 1,
                                     std::vector<ScoreT>(n + 1, kNegInf));
  std::vector<std::vector<Back>> back(m + 1,
                                      std::vector<Back>(n + 1, Back::kNone));
  for (size_t i = 0; i <= m; ++i) h[i][0] = 0;
  for (size_t j = 1; j <= n; ++j) {
    h[0][j] = h[0][j - 1] + gap;
    back[0][j] = Back::kDel;
  }
  for (size_t i = 1; i <= m; ++i) {
    for (size_t j = 1; j <= n; ++j) {
      ScoreT rep = h[i - 1][j - 1] + matrix.Score(query[i - 1], target[j - 1]);
      ScoreT ins = h[i - 1][j] + gap;
      ScoreT del = h[i][j - 1] + gap;
      ScoreT v = std::max({rep, ins, del});
      h[i][j] = v;
      if (v == rep) {
        back[i][j] = Back::kRep;
      } else if (v == ins) {
        back[i][j] = Back::kIns;
      } else {
        back[i][j] = Back::kDel;
      }
    }
  }
  // End pinned at target column n; free over query end rows.
  size_t bi = 0;
  ScoreT best = kNegInf;
  for (size_t i = 0; i <= m; ++i) {
    if (h[i][n] > best) {
      best = h[i][n];
      bi = i;
    }
  }
  Alignment out = WalkBack(h, back, bi, n, query, target);
  // Trim leading pure-insert run: column 0 is free (score 0), so any ops
  // consumed before the first target symbol would never appear; WalkBack
  // stops at column 0 because back[i][0] == kNone. Nothing to trim.
  out.score = best;
  return out;
}

}  // namespace align
}  // namespace oasis
