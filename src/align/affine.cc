#include "align/affine.h"

#include <algorithm>

#include "util/logging.h"

namespace oasis {
namespace align {

using score::kNegInf;
using score::ScoreT;

ScoreT AffineAlignScore(std::span<const seq::Symbol> query,
                        std::span<const seq::Symbol> target,
                        const score::SubstitutionMatrix& matrix,
                        const AffineGapModel& gaps) {
  OASIS_CHECK(gaps.Valid());
  const size_t m = query.size();
  const ScoreT open = gaps.gap_open;
  const ScoreT extend = gaps.gap_extend;

  // Column-major over the target; three state rows of length m+1.
  std::vector<ScoreT> h_prev(m + 1, 0), h_cur(m + 1, 0);
  std::vector<ScoreT> ix_prev(m + 1, kNegInf), ix_cur(m + 1, kNegInf);
  // Iy only needs the current column (gap in query extends within column).

  ScoreT best = 0;
  for (size_t j = 1; j <= target.size(); ++j) {
    const seq::Symbol t = target[j - 1];
    h_cur[0] = 0;
    ix_cur[0] = kNegInf;
    ScoreT iy = kNegInf;  // Iy[0][j]
    for (size_t i = 1; i <= m; ++i) {
      // Ix: gap in target (consume query residue moving down the column
      // boundary between target columns) -- extends from the previous
      // column's H (open) or Ix (extend).
      ScoreT ix = std::max<ScoreT>(
          h_prev[i] == kNegInf ? kNegInf : h_prev[i] + open + extend,
          ix_prev[i] == kNegInf ? kNegInf : ix_prev[i] + extend);
      ix_cur[i] = ix;
      // Iy: gap in query, extends within the current column.
      ScoreT iy_open = h_cur[i - 1] == kNegInf ? kNegInf
                                               : h_cur[i - 1] + open + extend;
      ScoreT iy_ext = iy == kNegInf ? kNegInf : iy + extend;
      iy = std::max(iy_open, iy_ext);
      // H: residue pair, or close a gap state, or restart.
      ScoreT diag = h_prev[i - 1] + matrix.Score(query[i - 1], t);
      ScoreT v = std::max({ScoreT{0}, diag, ix, iy});
      h_cur[i] = v;
      best = std::max(best, v);
    }
    std::swap(h_prev, h_cur);
    std::swap(ix_prev, ix_cur);
  }
  return best;
}

std::vector<AffineHit> AffineScanDatabase(std::span<const seq::Symbol> query,
                                          const seq::SequenceDatabase& db,
                                          const score::SubstitutionMatrix& matrix,
                                          const AffineGapModel& gaps,
                                          ScoreT min_score) {
  OASIS_CHECK_GE(min_score, 1);
  std::vector<AffineHit> hits;
  for (seq::SequenceId s = 0; s < db.num_sequences(); ++s) {
    ScoreT best =
        AffineAlignScore(query, db.sequence(s).symbols(), matrix, gaps);
    if (best >= min_score) hits.push_back(AffineHit{s, best});
  }
  std::stable_sort(hits.begin(), hits.end(),
                   [](const AffineHit& a, const AffineHit& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.sequence_id < b.sequence_id;
                   });
  return hits;
}

}  // namespace align
}  // namespace oasis
