// Query-bound alignment context: the one-query-many-targets form of
// AlignPair that database scans actually want.
//
// Construction resolves the SIMD dispatch level once and (for vector
// levels) builds the striped QueryProfile once; Align() then reuses one
// set of DP scratch buffers across every target, so a whole-database
// scan performs no per-pair allocation on either the vector or the
// scalar path. Results are byte-identical to AlignPair for every mode —
// the profile/kernels only change the wall clock (the invariant
// tests/simd_parity_test.cc fuzzes).

#pragma once

#include <optional>
#include <span>

#include "align/simd/dispatch.h"
#include "align/simd/query_profile.h"
#include "align/simd/sw_kernels.h"
#include "align/smith_waterman.h"

namespace oasis {
namespace align {

/// Reusable one-query aligner. Not thread-safe (the scratch is mutable);
/// create one per worker. The query span and matrix must outlive it.
class PairAligner {
 public:
  /// Resolves `mode` (see simd::ResolveLevel) and, for vector levels,
  /// builds the query profile. A non-null `quality` (its matrix must be
  /// `matrix`, and it must outlive the aligner) arms the quality path:
  /// the three-argument Align() then scores targets that carry phred
  /// qualities with the binned tables. Targets without qualities — and
  /// every call when `quality` is null — take the exact plain path.
  PairAligner(std::span<const seq::Symbol> query,
              const score::SubstitutionMatrix& matrix,
              simd::SimdMode mode = simd::SimdMode::kAuto,
              const score::QualityAdjust* quality = nullptr);

  /// The dispatch level Align() runs at.
  simd::SimdLevel level() const { return level_; }

  /// Best local alignment against one target — same contract and same
  /// result, byte for byte, as AlignPair(query, target, matrix, stats).
  SequenceHit Align(std::span<const seq::Symbol> target,
                    AlignStats* stats = nullptr);

  /// Quality-aware variant: when the aligner was armed with quality
  /// tables AND `target_quals` is non-empty (one phred value per target
  /// symbol), scores with AlignPairQuality / AlignStripedQuality;
  /// otherwise defers to the plain Align() byte for byte.
  SequenceHit Align(std::span<const seq::Symbol> target,
                    std::span<const uint8_t> target_quals,
                    AlignStats* stats = nullptr);

 private:
  std::span<const seq::Symbol> query_;
  const score::SubstitutionMatrix* matrix_;
  const score::QualityAdjust* quality_;
  simd::SimdLevel level_;
  /// Present only at vector levels with at least one viable lane width.
  std::optional<simd::QueryProfile> profile_;
  /// Quality-expanded twin of profile_, built only when `quality` was
  /// supplied (same viability: both derive layouts from the raw matrix).
  std::optional<simd::QueryProfile> quality_profile_;
  simd::StripedScratch scratch_;
  AlignWorkspace workspace_;
};

}  // namespace align
}  // namespace oasis
