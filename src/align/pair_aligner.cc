#include "align/pair_aligner.h"

namespace oasis {
namespace align {

PairAligner::PairAligner(std::span<const seq::Symbol> query,
                         const score::SubstitutionMatrix& matrix,
                         simd::SimdMode mode)
    : query_(query), matrix_(&matrix), level_(simd::ResolveLevel(mode)) {
  if (level_ != simd::SimdLevel::kScalar) {
    profile_.emplace(query_, *matrix_, level_);
    // A matrix whose scores fit no lane width (or an empty query) makes
    // every target take the scalar rung; skip the profile entirely.
    if (!profile_->u8().viable && !profile_->u16().viable) {
      profile_.reset();
      level_ = simd::SimdLevel::kScalar;
    }
  }
}

SequenceHit PairAligner::Align(std::span<const seq::Symbol> target,
                               AlignStats* stats) {
  if (!profile_.has_value()) {
    return AlignPair(query_, target, *matrix_, stats, &workspace_);
  }
  return simd::AlignStriped(*profile_, target, stats, &scratch_, &workspace_);
}

}  // namespace align
}  // namespace oasis
