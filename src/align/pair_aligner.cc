#include "align/pair_aligner.h"

#include "util/logging.h"

namespace oasis {
namespace align {

PairAligner::PairAligner(std::span<const seq::Symbol> query,
                         const score::SubstitutionMatrix& matrix,
                         simd::SimdMode mode,
                         const score::QualityAdjust* quality)
    : query_(query),
      matrix_(&matrix),
      quality_(quality),
      level_(simd::ResolveLevel(mode)) {
  if (quality_ != nullptr) {
    OASIS_CHECK(&quality_->matrix() == matrix_)
        << "quality tables must be built from the aligner's matrix";
  }
  if (level_ != simd::SimdLevel::kScalar) {
    profile_.emplace(query_, *matrix_, level_);
    // A matrix whose scores fit no lane width (or an empty query) makes
    // every target take the scalar rung; skip the profile entirely.
    if (!profile_->u8().viable && !profile_->u16().viable) {
      profile_.reset();
      level_ = simd::SimdLevel::kScalar;
    } else if (quality_ != nullptr) {
      // Same layouts as the plain profile (both derive from the raw
      // matrix), so viability never diverges between the two.
      quality_profile_.emplace(query_, *quality_, level_);
    }
  }
}

SequenceHit PairAligner::Align(std::span<const seq::Symbol> target,
                               AlignStats* stats) {
  if (!profile_.has_value()) {
    return AlignPair(query_, target, *matrix_, stats, &workspace_);
  }
  return simd::AlignStriped(*profile_, target, stats, &scratch_, &workspace_);
}

SequenceHit PairAligner::Align(std::span<const seq::Symbol> target,
                               std::span<const uint8_t> target_quals,
                               AlignStats* stats) {
  if (quality_ == nullptr || target_quals.empty()) {
    return Align(target, stats);
  }
  if (!quality_profile_.has_value()) {
    return AlignPairQuality(query_, target, *quality_, target_quals, stats,
                            &workspace_);
  }
  return simd::AlignStripedQuality(*quality_profile_, target, target_quals,
                                   stats, &scratch_, &workspace_);
}

}  // namespace align
}  // namespace oasis
