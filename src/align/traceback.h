// Alignment reconstruction (traceback) for reporting.
//
// Two variants:
//   * TracebackLocal      — classic S-W traceback (free start, free end),
//                           used by the baselines and examples.
//   * TracebackPathPinned — the OASIS variant: the *target start is pinned*
//                           to the beginning of the DP region (a suffix-tree
//                           path start) and no reset-to-zero is allowed,
//                           matching the Expand recurrence of §3.2. Used to
//                           recover the alignment behind an OASIS result.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "score/substitution_matrix.h"
#include "seq/alphabet.h"

namespace oasis {
namespace align {

/// One alignment operation (paper §2.1 / Figure 1).
enum class Op : uint8_t {
  kMatch,     ///< replacement with the same symbol
  kMismatch,  ///< replacement with a different symbol
  kInsert,    ///< gap in the target ("a -> -": query symbol skipped)
  kDelete,    ///< gap in the query ("- -> b": target symbol skipped)
};

/// A reconstructed local alignment with 0-based inclusive coordinates.
struct Alignment {
  score::ScoreT score = 0;
  uint64_t query_start = 0, query_end = 0;
  uint64_t target_start = 0, target_end = 0;
  std::vector<Op> ops;  ///< query/target order, start -> end

  /// Compact CIGAR-like string, e.g. "5=1X2I3=" (= match, X mismatch,
  /// I insert/gap-in-target, D delete/gap-in-query).
  std::string Cigar() const;

  /// Three-line pretty rendering (query / bars / target) under `alphabet`.
  std::string Pretty(const seq::Alphabet& alphabet,
                     std::span<const seq::Symbol> query,
                     std::span<const seq::Symbol> target) const;

  /// Recomputes the score from ops (consistency check for tests).
  score::ScoreT RecomputeScore(const score::SubstitutionMatrix& matrix,
                               std::span<const seq::Symbol> query,
                               std::span<const seq::Symbol> target) const;
};

/// Best local alignment between `query` and `target` with full traceback.
/// Returns a zero-score empty alignment when no positive-scoring local
/// alignment exists.
Alignment TracebackLocal(std::span<const seq::Symbol> query,
                         std::span<const seq::Symbol> target,
                         const score::SubstitutionMatrix& matrix);

/// OASIS-style traceback: finds the best alignment of any query substring
/// against the *entire* target span (target consumed from its first symbol
/// to `target.size()`), i.e. the DP of §3.2 with the pinned start, ending
/// exactly at the last target symbol. Callers pass the path prefix ending
/// where the OASIS search recorded its best cell.
Alignment TracebackPathPinned(std::span<const seq::Symbol> query,
                              std::span<const seq::Symbol> target,
                              const score::SubstitutionMatrix& matrix);

}  // namespace align
}  // namespace oasis
