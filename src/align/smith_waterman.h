// Smith-Waterman local alignment (paper §2.2), the exact baseline OASIS is
// compared against.
//
// The scan variants compute, for each database sequence, the score of its
// single strongest local alignment with the query (the paper's reporting
// mode), instrumented with the "columns expanded" counter used by Figure 4
// (one column per target symbol processed).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "align/simd/dispatch.h"
#include "score/quality.h"
#include "score/substitution_matrix.h"
#include "seq/database.h"

namespace oasis {
namespace align {

/// Best-alignment summary for one target sequence.
struct SequenceHit {
  seq::SequenceId sequence_id = 0;  ///< database sequence this hit is in
  score::ScoreT score = 0;          ///< best local alignment score
  /// 0-based inclusive end coordinates of the best cell.
  uint64_t query_end = 0;
  uint64_t target_end = 0;  ///< see query_end
};

/// Counters shared by the S-W scan and the OASIS search (Figure 4 compares
/// the two on equal terms).
struct AlignStats {
  uint64_t columns_expanded = 0;  ///< DP columns (one per target symbol)
  uint64_t cells_computed = 0;    ///< individual DP cells
};

/// Reusable DP column buffers for AlignPair. Database scans align
/// thousands of targets with the same query; passing one workspace lets
/// them allocate the two O(m) columns once instead of twice per target.
/// Grown on demand, never shrunk; not thread-safe (one per worker).
struct AlignWorkspace {
  std::vector<score::ScoreT> prev;  ///< column j-1, indices 0..m
  std::vector<score::ScoreT> cur;   ///< column j, indices 0..m
};

/// Smith-Waterman between one query and one target. O(m) memory (two
/// columns). Returns the single best-scoring cell (ties: smallest target
/// end, then smallest query end — the first one reached in column order).
/// `workspace` (optional) supplies reusable column buffers; when null the
/// columns are allocated per call.
SequenceHit AlignPair(std::span<const seq::Symbol> query,
                      std::span<const seq::Symbol> target,
                      const score::SubstitutionMatrix& matrix,
                      AlignStats* stats = nullptr,
                      AlignWorkspace* workspace = nullptr);

/// Quality-weighted AlignPair: identical recurrence, tie-breaking and
/// workspace contract, but target column j is scored with
/// quality.Score(query[i-1], target[j-1], BinOf(target_quals[j-1])) —
/// uncertain base calls contribute proportionally less evidence (see
/// score/quality.h). `target_quals` holds one phred value per target
/// symbol (sizes must match). With all qualities in the identity bin
/// (phred >= 20) the result is byte-identical to AlignPair. Stats are
/// intentionally NOT adjusted: a quality-weighted column costs the same
/// work as a plain one.
SequenceHit AlignPairQuality(std::span<const seq::Symbol> query,
                             std::span<const seq::Symbol> target,
                             const score::QualityAdjust& quality,
                             std::span<const uint8_t> target_quals,
                             AlignStats* stats = nullptr,
                             AlignWorkspace* workspace = nullptr);

/// Full S-W DP matrix for small inputs (tests and the paper's Table 2
/// example). Row 0 / column 0 are the zero boundary; entry (i, j) scores
/// alignments ending at query i / target j (1-based).
std::vector<std::vector<score::ScoreT>> FullMatrix(
    std::span<const seq::Symbol> query, std::span<const seq::Symbol> target,
    const score::SubstitutionMatrix& matrix);

/// Scans the whole database; returns one hit per sequence whose best score
/// is >= min_score, sorted by descending score (ties: ascending sequence
/// id). This is the paper's "accurate but expensive" baseline.
///
/// `simd` selects the kernel (default: best available — see
/// align/simd/dispatch.h). Every mode produces byte-identical hits and
/// identical AlignStats; SIMD only changes the wall clock.
///
/// `quality` (optional) engages quality-weighted scoring: sequences that
/// carry phred qualities are scored with the binned tables, sequences
/// without qualities take the exact plain path. It must wrap the same
/// `matrix`. When null (or when no sequence has qualities) results are
/// byte-identical to the pre-quality scan.
std::vector<SequenceHit> ScanDatabase(std::span<const seq::Symbol> query,
                                      const seq::SequenceDatabase& db,
                                      const score::SubstitutionMatrix& matrix,
                                      score::ScoreT min_score,
                                      AlignStats* stats = nullptr,
                                      simd::SimdMode simd = simd::SimdMode::kAuto,
                                      const score::QualityAdjust* quality = nullptr);

}  // namespace align
}  // namespace oasis
