#include "align/smith_waterman.h"

#include <algorithm>

#include "align/pair_aligner.h"
#include "util/logging.h"

namespace oasis {
namespace align {

using score::ScoreT;

SequenceHit AlignPair(std::span<const seq::Symbol> query,
                      std::span<const seq::Symbol> target,
                      const score::SubstitutionMatrix& matrix,
                      AlignStats* stats, AlignWorkspace* workspace) {
  const size_t m = query.size();
  const ScoreT gap = matrix.gap_penalty();

  SequenceHit best;
  best.score = 0;

  // Column-major: prev/cur hold column j over query positions 0..m.
  AlignWorkspace local;
  AlignWorkspace& ws = workspace != nullptr ? *workspace : local;
  ws.prev.assign(m + 1, 0);
  ws.cur.assign(m + 1, 0);
  ScoreT* prev = ws.prev.data();
  ScoreT* cur = ws.cur.data();

  for (size_t j = 1; j <= target.size(); ++j) {
    const seq::Symbol t = target[j - 1];
    cur[0] = 0;
    for (size_t i = 1; i <= m; ++i) {
      ScoreT rep = prev[i - 1] + matrix.Score(query[i - 1], t);
      ScoreT ins = prev[i] + gap;     // skip target symbol
      ScoreT del = cur[i - 1] + gap;  // skip query symbol
      ScoreT v = std::max({ScoreT{0}, rep, ins, del});
      cur[i] = v;
      if (v > best.score) {
        best.score = v;
        best.query_end = i - 1;
        best.target_end = j - 1;
      }
    }
    if (stats != nullptr) {
      ++stats->columns_expanded;
      stats->cells_computed += m;
    }
    std::swap(prev, cur);
  }
  return best;
}

SequenceHit AlignPairQuality(std::span<const seq::Symbol> query,
                             std::span<const seq::Symbol> target,
                             const score::QualityAdjust& quality,
                             std::span<const uint8_t> target_quals,
                             AlignStats* stats, AlignWorkspace* workspace) {
  OASIS_CHECK_EQ(target.size(), target_quals.size())
      << "one phred value per target symbol";
  const size_t m = query.size();
  const ScoreT gap = quality.matrix().gap_penalty();

  SequenceHit best;
  best.score = 0;

  AlignWorkspace local;
  AlignWorkspace& ws = workspace != nullptr ? *workspace : local;
  ws.prev.assign(m + 1, 0);
  ws.cur.assign(m + 1, 0);
  ScoreT* prev = ws.prev.data();
  ScoreT* cur = ws.cur.data();

  for (size_t j = 1; j <= target.size(); ++j) {
    const seq::Symbol t = target[j - 1];
    const uint32_t bin = score::QualityAdjust::BinOf(target_quals[j - 1]);
    cur[0] = 0;
    for (size_t i = 1; i <= m; ++i) {
      ScoreT rep = prev[i - 1] + quality.Score(query[i - 1], t, bin);
      ScoreT ins = prev[i] + gap;     // skip target symbol
      ScoreT del = cur[i - 1] + gap;  // skip query symbol
      ScoreT v = std::max({ScoreT{0}, rep, ins, del});
      cur[i] = v;
      if (v > best.score) {
        best.score = v;
        best.query_end = i - 1;
        best.target_end = j - 1;
      }
    }
    if (stats != nullptr) {
      ++stats->columns_expanded;
      stats->cells_computed += m;
    }
    std::swap(prev, cur);
  }
  return best;
}

std::vector<std::vector<ScoreT>> FullMatrix(
    std::span<const seq::Symbol> query, std::span<const seq::Symbol> target,
    const score::SubstitutionMatrix& matrix) {
  const size_t m = query.size();
  const size_t n = target.size();
  const ScoreT gap = matrix.gap_penalty();
  std::vector<std::vector<ScoreT>> h(m + 1, std::vector<ScoreT>(n + 1, 0));
  for (size_t i = 1; i <= m; ++i) {
    for (size_t j = 1; j <= n; ++j) {
      ScoreT rep = h[i - 1][j - 1] + matrix.Score(query[i - 1], target[j - 1]);
      ScoreT ins = h[i - 1][j] + gap;
      ScoreT del = h[i][j - 1] + gap;
      h[i][j] = std::max({ScoreT{0}, rep, ins, del});
    }
  }
  return h;
}

std::vector<SequenceHit> ScanDatabase(std::span<const seq::Symbol> query,
                                      const seq::SequenceDatabase& db,
                                      const score::SubstitutionMatrix& matrix,
                                      ScoreT min_score, AlignStats* stats,
                                      simd::SimdMode simd,
                                      const score::QualityAdjust* quality) {
  OASIS_CHECK_GE(min_score, 1) << "local alignment scores are positive";
  if (quality != nullptr) {
    OASIS_CHECK(&quality->matrix() == &matrix)
        << "quality tables must be built from the scan matrix";
  }
  // One aligner for the whole scan: the query profile is built once and
  // the DP scratch is reused across targets (no per-pair allocation).
  PairAligner aligner(query, matrix, simd, quality);
  std::vector<SequenceHit> hits;
  for (seq::SequenceId s = 0; s < db.num_sequences(); ++s) {
    const seq::Sequence& target = db.sequence(s);
    SequenceHit hit = aligner.Align(target.symbols(), target.quals(), stats);
    if (hit.score >= min_score) {
      hit.sequence_id = s;
      hits.push_back(hit);
    }
  }
  std::stable_sort(hits.begin(), hits.end(),
                   [](const SequenceHit& a, const SequenceHit& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.sequence_id < b.sequence_id;
                   });
  return hits;
}

}  // namespace align
}  // namespace oasis
