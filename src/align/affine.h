// Affine-gap local alignment (Gotoh's algorithm).
//
// The paper's own implementation supports only the fixed (linear) gap
// model and lists affine gaps as future work (§4.2, §6), noting that both
// OASIS and S-W would need three dynamic-programming matrices. This module
// implements that baseline for Smith-Waterman — the M / Ix / Iy recurrence
// — so the scoring substrate is ready for an affine OASIS:
//
//   M[i][j]  = best alignment ending in a residue pair at (i, j)
//   Ix[i][j] = best alignment ending in a gap in the target (query residue
//              consumed), opened with `gap_open` and extended with
//              `gap_extend`
//   Iy[i][j] = symmetric, gap in the query
//
// A k-symbol gap contributes gap_open + k * gap_extend, matching the
// paper's definition "(o + k*e)" in §4.2.

#pragma once

#include <span>

#include "score/substitution_matrix.h"
#include "seq/database.h"

namespace oasis {
namespace align {

struct AffineGapModel {
  /// Charged once when a gap opens. Must be <= 0.
  score::ScoreT gap_open = -9;
  /// Charged per gap symbol (including the first). Must be < 0.
  score::ScoreT gap_extend = -1;

  bool Valid() const { return gap_open <= 0 && gap_extend < 0; }
};

/// Best local alignment score between `query` and `target` under the
/// affine model (the residue scores come from `matrix`; its linear gap
/// penalty is ignored). O(mn) time, O(m) memory.
score::ScoreT AffineAlignScore(std::span<const seq::Symbol> query,
                               std::span<const seq::Symbol> target,
                               const score::SubstitutionMatrix& matrix,
                               const AffineGapModel& gaps);

/// Per-sequence best affine scores over a database, filtered by
/// `min_score` and sorted by descending score (affine analogue of
/// ScanDatabase in smith_waterman.h).
struct AffineHit {
  seq::SequenceId sequence_id = 0;
  score::ScoreT score = 0;
};
std::vector<AffineHit> AffineScanDatabase(std::span<const seq::Symbol> query,
                                          const seq::SequenceDatabase& db,
                                          const score::SubstitutionMatrix& matrix,
                                          const AffineGapModel& gaps,
                                          score::ScoreT min_score);

}  // namespace align
}  // namespace oasis
