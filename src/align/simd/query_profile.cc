#include "align/simd/query_profile.h"

#include <limits>

#include "util/logging.h"

namespace oasis {
namespace align {
namespace simd {

namespace {

// Vector width in bytes per resolved level (0 = no vector kernels).
uint32_t VectorBytes(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return 0;
    case SimdLevel::kSse4:
      return 16;
    case SimdLevel::kAvx2:
      return 32;
  }
  return 0;
}

// A width is viable when every quantity the kernel keeps in a lane —
// biased profile entries, the gap magnitude, and any H value below the
// overflow threshold — fits the word. The kernel separately re-runs
// wider when a *particular pair* saturates; non-viability here means the
// width cannot represent even a single recurrence step exactly.
WidthLayout MakeLayout(uint32_t vector_bytes, uint32_t word_bytes,
                       uint32_t query_len,
                       const score::SubstitutionMatrix& matrix) {
  WidthLayout layout;
  if (vector_bytes == 0 || query_len == 0) return layout;
  const uint64_t max_word = (word_bytes == 1) ? 255u : 65535u;
  const int64_t bias =
      matrix.min_score() < 0 ? -static_cast<int64_t>(matrix.min_score()) : 0;
  const int64_t gap_mag = -static_cast<int64_t>(matrix.gap_penalty());
  if (bias > static_cast<int64_t>(max_word)) return layout;
  if (static_cast<int64_t>(matrix.max_score()) + bias >
      static_cast<int64_t>(max_word)) {
    return layout;
  }
  if (gap_mag > static_cast<int64_t>(max_word)) return layout;
  layout.lanes = vector_bytes / word_bytes;
  layout.seg_len = (query_len + layout.lanes - 1) / layout.lanes;
  layout.stride = layout.seg_len * layout.lanes;
  layout.bias = static_cast<uint32_t>(bias);
  layout.viable = true;
  return layout;
}

// Fills one word width's striped lanes for `num_columns` target codes,
// scoring query position p against column code r with `score_of(p, r)`.
// Plain profiles pass sigma columns scored from the matrix; quality
// profiles pass effective_sigma columns scored from the binned tables.
template <typename Word, typename ScoreFn>
void FillLanes(const WidthLayout& layout, std::span<const seq::Symbol> query,
               uint32_t num_columns, ScoreFn score_of,
               std::vector<Word>* lanes, std::vector<Word>* mask) {
  const uint32_t m = static_cast<uint32_t>(query.size());
  lanes->assign(static_cast<size_t>(num_columns) * layout.stride, 0);
  mask->assign(layout.stride, 0);
  for (uint32_t s = 0; s < layout.seg_len; ++s) {
    for (uint32_t l = 0; l < layout.lanes; ++l) {
      const uint32_t p = l * layout.seg_len + s;
      if (p < m) (*mask)[s * layout.lanes + l] = std::numeric_limits<Word>::max();
    }
  }
  for (uint32_t r = 0; r < num_columns; ++r) {
    Word* column = lanes->data() + static_cast<size_t>(r) * layout.stride;
    for (uint32_t s = 0; s < layout.seg_len; ++s) {
      for (uint32_t l = 0; l < layout.lanes; ++l) {
        const uint32_t p = l * layout.seg_len + s;
        if (p >= m) continue;
        const score::ScoreT score = score_of(p, r);
        column[s * layout.lanes + l] =
            static_cast<Word>(score + static_cast<score::ScoreT>(layout.bias));
      }
    }
  }
}

}  // namespace

QueryProfile::QueryProfile(std::span<const seq::Symbol> query,
                           const score::SubstitutionMatrix& matrix,
                           SimdLevel level)
    : query_(query.begin(), query.end()),
      matrix_(&matrix),
      level_(level),
      query_len_(static_cast<uint32_t>(query.size())) {
  for (seq::Symbol sym : query_) {
    OASIS_DCHECK(sym < matrix.size()) << "query symbol out of alphabet";
  }
  const uint32_t vec = VectorBytes(level);
  u8_ = MakeLayout(vec, 1, query_len_, matrix);
  u16_ = MakeLayout(vec, 2, query_len_, matrix);
  const auto score_of = [&](uint32_t p, uint32_t r) {
    return matrix.Score(query_[p], static_cast<seq::Symbol>(r));
  };
  if (u8_.viable) {
    FillLanes<uint8_t>(u8_, query_, matrix.size(), score_of, &lanes8_, &mask8_);
  }
  if (u16_.viable) {
    FillLanes<uint16_t>(u16_, query_, matrix.size(), score_of, &lanes16_,
                        &mask16_);
  }
}

QueryProfile::QueryProfile(std::span<const seq::Symbol> query,
                           const score::QualityAdjust& quality, SimdLevel level)
    : query_(query.begin(), query.end()),
      matrix_(&quality.matrix()),
      quality_(&quality),
      level_(level),
      query_len_(static_cast<uint32_t>(query.size())) {
  for (seq::Symbol sym : query_) {
    OASIS_DCHECK(sym < matrix_->size()) << "query symbol out of alphabet";
  }
  // Layouts derive from the raw matrix: every adjusted score is clamped
  // into [min_score, max_score], so the raw bias/viability rules cover
  // the quality tables too (and match the plain profile bit for bit).
  const uint32_t vec = VectorBytes(level);
  u8_ = MakeLayout(vec, 1, query_len_, *matrix_);
  u16_ = MakeLayout(vec, 2, query_len_, *matrix_);
  const auto score_of = [&](uint32_t p, uint32_t r) {
    return quality_->ScoreEffective(query_[p], static_cast<seq::Symbol>(r));
  };
  const uint32_t columns = quality.effective_sigma();
  if (u8_.viable) {
    FillLanes<uint8_t>(u8_, query_, columns, score_of, &lanes8_, &mask8_);
  }
  if (u16_.viable) {
    FillLanes<uint16_t>(u16_, query_, columns, score_of, &lanes16_, &mask16_);
  }
}

}  // namespace simd
}  // namespace align
}  // namespace oasis
