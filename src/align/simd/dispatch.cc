#include "align/simd/dispatch.h"

#include <string>

namespace oasis {
namespace align {
namespace simd {

namespace {

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool CpuHasSse41() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("sse4.1");
#else
  return false;
#endif
}

SimdLevel DetectUncached() {
  if (internal::Avx2Compiled() && CpuHasAvx2()) return SimdLevel::kAvx2;
  if (internal::Sse4Compiled() && CpuHasSse41()) return SimdLevel::kSse4;
  return SimdLevel::kScalar;
}

}  // namespace

const char* SimdModeName(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAuto:
      return "auto";
    case SimdMode::kAvx2:
      return "avx2";
    case SimdMode::kSse4:
      return "sse4";
    case SimdMode::kOff:
      return "off";
  }
  return "auto";
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse4:
      return "sse4";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "scalar";
}

SimdLevel DetectLevel() {
  static const SimdLevel level = DetectUncached();
  return level;
}

bool LevelSupported(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kSse4:
      return internal::Sse4Compiled() && CpuHasSse41();
    case SimdLevel::kAvx2:
      return internal::Avx2Compiled() && CpuHasAvx2();
  }
  return false;
}

SimdLevel ResolveLevel(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAuto:
      return DetectLevel();
    case SimdMode::kAvx2:
      return LevelSupported(SimdLevel::kAvx2) ? SimdLevel::kAvx2
                                              : SimdLevel::kScalar;
    case SimdMode::kSse4:
      return LevelSupported(SimdLevel::kSse4) ? SimdLevel::kSse4
                                              : SimdLevel::kScalar;
    case SimdMode::kOff:
      return SimdLevel::kScalar;
  }
  return SimdLevel::kScalar;
}

util::Status CheckSupported(SimdMode mode) {
  if (mode == SimdMode::kAvx2 && !LevelSupported(SimdLevel::kAvx2)) {
    return util::Status::InvalidArgument(
        "simd mode 'avx2' is not available on this build/CPU");
  }
  if (mode == SimdMode::kSse4 && !LevelSupported(SimdLevel::kSse4)) {
    return util::Status::InvalidArgument(
        "simd mode 'sse4' is not available on this build/CPU");
  }
  return util::Status::OK();
}

util::StatusOr<SimdMode> ParseSimdMode(std::string_view text) {
  if (text == "auto") return SimdMode::kAuto;
  if (text == "avx2") return SimdMode::kAvx2;
  if (text == "sse4") return SimdMode::kSse4;
  if (text == "off") return SimdMode::kOff;
  return util::Status::InvalidArgument(
      "invalid simd mode '" + std::string(text) +
      "' (expected auto|avx2|sse4|off)");
}

}  // namespace simd
}  // namespace align
}  // namespace oasis
