#include "align/simd/ungapped.h"

namespace oasis {
namespace align {
namespace simd {

namespace internal {

DiagExtension ExtendDiagonalScalar(std::span<const seq::Symbol> query,
                                   std::span<const seq::Symbol> target,
                                   uint64_t q0, uint64_t t0, int dir,
                                   uint64_t max_steps,
                                   const score::SubstitutionMatrix& matrix,
                                   score::ScoreT xdrop) {
  DiagExtension out;
  score::ScoreT run = 0;
  for (uint64_t k = 0; k < max_steps; ++k) {
    const seq::Symbol q = dir > 0 ? query[q0 + k] : query[q0 - k];
    const seq::Symbol t = dir > 0 ? target[t0 + k] : target[t0 - k];
    run += matrix.Score(q, t);
    if (run > out.best) {
      out.best = run;
      out.steps = k + 1;
    }
    if (run <= out.best - xdrop) break;
  }
  return out;
}

}  // namespace internal

DiagExtension ExtendDiagonal(std::span<const seq::Symbol> query,
                             std::span<const seq::Symbol> target, uint64_t q0,
                             uint64_t t0, int dir, uint64_t max_steps,
                             const score::SubstitutionMatrix& matrix,
                             score::ScoreT xdrop, SimdLevel level) {
  if (level == SimdLevel::kAvx2) {
    return internal::ExtendDiagonalAvx2(query, target, q0, t0, dir, max_steps,
                                        matrix, xdrop);
  }
  // SSE4 level: no 128-bit body (the vector path needs AVX2 gathers).
  return internal::ExtendDiagonalScalar(query, target, q0, t0, dir, max_steps,
                                        matrix, xdrop);
}

}  // namespace simd
}  // namespace align
}  // namespace oasis
