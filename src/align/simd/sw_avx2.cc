// AVX2 bodies of the SIMD alignment kernels. This translation unit is
// compiled with -mavx2 (CMake adds the flag per-file when the compiler
// supports it); everything here is reached only after runtime dispatch
// proved the CPU runs AVX2. Keep ALL AVX2 code in this file — nothing
// else in the library is built with the flag.
//
// Without __AVX2__ (non-x86, old compiler) or with OASIS_DISABLE_SIMD the
// file degrades to stubs: Avx2Compiled() returns false, dispatch never
// selects the level, and the entry points abort if called anyway.

#include "align/simd/dispatch.h"
#include "align/simd/sw_kernels.h"
#include "align/simd/ungapped.h"
#include "util/logging.h"

#if defined(__AVX2__) && !defined(OASIS_DISABLE_SIMD)

#include <immintrin.h>

#include "align/simd/sw_striped_impl.h"

namespace oasis {
namespace align {
namespace simd {
namespace internal {

namespace {

struct Avx2U8 {
  using Vec = __m256i;
  using Word = uint8_t;
  static constexpr uint32_t kLanes = 32;
  static Vec Zero() { return _mm256_setzero_si256(); }
  static Vec Set1(Word w) {
    return _mm256_set1_epi8(static_cast<char>(w));
  }
  static Vec Load(const Word* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void Store(Word* p, Vec v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static Vec AddSat(Vec a, Vec b) { return _mm256_adds_epu8(a, b); }
  static Vec SubSat(Vec a, Vec b) { return _mm256_subs_epu8(a, b); }
  static Vec Max(Vec a, Vec b) { return _mm256_max_epu8(a, b); }
  static Vec And(Vec a, Vec b) { return _mm256_and_si256(a, b); }
  static Vec ShiftLanesUp(Vec a) {
    // One byte toward higher lanes across the 128-bit boundary: lane 16
    // must receive lane 15, so feed alignr the low half as carry.
    return _mm256_alignr_epi8(a, _mm256_permute2x128_si256(a, a, 0x08), 15);
  }
  static bool AnyGreater(Vec a, Vec b) {
    // Unsigned a > b in some lane <=> saturating a - b is nonzero there.
    return _mm256_movemask_epi8(_mm256_cmpeq_epi8(
               _mm256_subs_epu8(a, b), _mm256_setzero_si256())) != -1;
  }
};

struct Avx2U16 {
  using Vec = __m256i;
  using Word = uint16_t;
  static constexpr uint32_t kLanes = 16;
  static Vec Zero() { return _mm256_setzero_si256(); }
  static Vec Set1(Word w) {
    return _mm256_set1_epi16(static_cast<short>(w));
  }
  static Vec Load(const Word* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void Store(Word* p, Vec v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static Vec AddSat(Vec a, Vec b) { return _mm256_adds_epu16(a, b); }
  static Vec SubSat(Vec a, Vec b) { return _mm256_subs_epu16(a, b); }
  static Vec Max(Vec a, Vec b) { return _mm256_max_epu16(a, b); }
  static Vec And(Vec a, Vec b) { return _mm256_and_si256(a, b); }
  static Vec ShiftLanesUp(Vec a) {
    return _mm256_alignr_epi8(a, _mm256_permute2x128_si256(a, a, 0x08), 14);
  }
  static bool AnyGreater(Vec a, Vec b) {
    return _mm256_movemask_epi8(_mm256_cmpeq_epi16(
               _mm256_subs_epu16(a, b), _mm256_setzero_si256())) != -1;
  }
};

// 32-bit-lane shifts toward higher lanes (zero fill), for the in-register
// prefix sum of the ungapped scorer.
inline __m256i ShiftDwordsUp1(__m256i x) {
  return _mm256_alignr_epi8(x, _mm256_permute2x128_si256(x, x, 0x08), 12);
}
inline __m256i ShiftDwordsUp2(__m256i x) {
  return _mm256_alignr_epi8(x, _mm256_permute2x128_si256(x, x, 0x08), 8);
}
inline __m256i ShiftDwordsUp4(__m256i x) {
  return _mm256_permute2x128_si256(x, x, 0x08);
}

}  // namespace

bool Avx2Compiled() { return true; }

StripedResult StripedU8Avx2(const QueryProfile& profile,
                            std::span<const seq::Symbol> target,
                            StripedScratch* scratch) {
  return RunStriped<Avx2U8>(profile, profile.lanes8(), profile.mask8(),
                            profile.u8(), 255, target, scratch);
}

StripedResult StripedU16Avx2(const QueryProfile& profile,
                             std::span<const seq::Symbol> target,
                             StripedScratch* scratch) {
  return RunStriped<Avx2U16>(profile, profile.lanes16(), profile.mask16(),
                             profile.u16(), 65535, target, scratch);
}

DiagExtension ExtendDiagonalAvx2(std::span<const seq::Symbol> query,
                                 std::span<const seq::Symbol> target,
                                 uint64_t q0, uint64_t t0, int dir,
                                 uint64_t max_steps,
                                 const score::SubstitutionMatrix& matrix,
                                 score::ScoreT xdrop) {
  static_assert(sizeof(seq::Symbol) == 4, "gather indexes 32-bit symbols");
  const int* table = reinterpret_cast<const int*>(matrix.table_data());
  const __m256i vN = _mm256_set1_epi32(static_cast<int>(matrix.size()));
  const __m256i vXdrop = _mm256_set1_epi32(xdrop);
  const __m256i rev = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);

  DiagExtension out;
  score::ScoreT run = 0;
  uint64_t k = 0;
  while (k + 8 <= max_steps) {
    __m256i vq, vt;
    if (dir > 0) {
      vq = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(query.data() + q0 + k));
      vt = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(target.data() + t0 + k));
    } else {
      // Leftward: memory ascends but the walk descends; reverse so lane i
      // is step k+i.
      vq = _mm256_permutevar8x32_epi32(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(query.data() + q0 - k - 7)),
          rev);
      vt = _mm256_permutevar8x32_epi32(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(target.data() + t0 - k - 7)),
          rev);
    }
    const __m256i idx = _mm256_add_epi32(_mm256_mullo_epi32(vq, vN), vt);
    const __m256i s = _mm256_i32gather_epi32(table, idx, 4);
    // Running scores for all 8 steps: prefix sum + the carried-in run.
    __m256i x = _mm256_add_epi32(s, ShiftDwordsUp1(s));
    x = _mm256_add_epi32(x, ShiftDwordsUp2(x));
    x = _mm256_add_epi32(x, ShiftDwordsUp4(x));
    const __m256i v_run = _mm256_add_epi32(x, _mm256_set1_epi32(run));

    const __m256i v_best = _mm256_set1_epi32(out.best);
    const int improved = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(v_run, v_best)));
    const int alive = _mm256_movemask_ps(_mm256_castsi256_ps(
        _mm256_cmpgt_epi32(v_run, _mm256_sub_epi32(v_best, vXdrop))));
    if (improved == 0 && alive == 0xFF) {
      // No lane beats the best and none trips the X-drop (best is
      // constant across the block, so the check is exact): consume the
      // whole block.
      run = _mm256_extract_epi32(v_run, 7);
      k += 8;
      continue;
    }
    // Interesting block: replay its ≤ 8 steps with the scalar rule.
    alignas(32) int32_t runs[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(runs), v_run);
    for (int i = 0; i < 8; ++i) {
      const score::ScoreT r = runs[i];
      if (r > out.best) {
        out.best = r;
        out.steps = k + static_cast<uint64_t>(i) + 1;
      }
      if (r <= out.best - xdrop) return out;
    }
    run = runs[7];
    k += 8;
  }
  // Scalar tail for the last partial block (avoids out-of-range loads).
  for (; k < max_steps; ++k) {
    const seq::Symbol q = dir > 0 ? query[q0 + k] : query[q0 - k];
    const seq::Symbol t = dir > 0 ? target[t0 + k] : target[t0 - k];
    run += matrix.Score(q, t);
    if (run > out.best) {
      out.best = run;
      out.steps = k + 1;
    }
    if (run <= out.best - xdrop) break;
  }
  return out;
}

}  // namespace internal
}  // namespace simd
}  // namespace align
}  // namespace oasis

#else  // !__AVX2__ || OASIS_DISABLE_SIMD

namespace oasis {
namespace align {
namespace simd {
namespace internal {

bool Avx2Compiled() { return false; }

StripedResult StripedU8Avx2(const QueryProfile&, std::span<const seq::Symbol>,
                            StripedScratch*) {
  OASIS_CHECK(false) << "AVX2 kernel called in a build without AVX2";
  return {};
}

StripedResult StripedU16Avx2(const QueryProfile&, std::span<const seq::Symbol>,
                             StripedScratch*) {
  OASIS_CHECK(false) << "AVX2 kernel called in a build without AVX2";
  return {};
}

DiagExtension ExtendDiagonalAvx2(std::span<const seq::Symbol>,
                                 std::span<const seq::Symbol>, uint64_t,
                                 uint64_t, int, uint64_t,
                                 const score::SubstitutionMatrix&,
                                 score::ScoreT) {
  OASIS_CHECK(false) << "AVX2 kernel called in a build without AVX2";
  return {};
}

}  // namespace internal
}  // namespace simd
}  // namespace align
}  // namespace oasis

#endif  // __AVX2__
