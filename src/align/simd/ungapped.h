// Vectorized ungapped X-drop diagonal scorer — the inner loop of
// blast::ExtendUngapped.
//
// The scalar loop walks one diagonal accumulating a running score,
// remembering the best prefix and stopping once the running score drops
// `xdrop` below it. The vector path scores the diagonal in blocks of 8
// symbol pairs (AVX2 gather over the raw substitution table + in-register
// prefix sum / prefix max): a block where no lane improves the best and
// no lane trips the X-drop is consumed in O(1), otherwise the block's ≤ 8
// lanes are replayed with the exact scalar bookkeeping. Either way the
// result — best score AND the step count that tie-breaks coordinates —
// is byte-identical to the scalar loop.

#pragma once

#include <cstdint>
#include <span>

#include "align/simd/dispatch.h"
#include "score/substitution_matrix.h"
#include "seq/alphabet.h"

namespace oasis {
namespace align {
namespace simd {

/// One direction of an ungapped X-drop extension.
struct DiagExtension {
  /// Best running score seen (0 when no prefix ever scored positive —
  /// the scalar loop's "never improved" case).
  score::ScoreT best = 0;
  /// Symbol pairs consumed through the best prefix (0 = none); the
  /// caller maps this back to end coordinates.
  uint64_t steps = 0;
};

/// Scores the diagonal (query[q0 + k*dir], target[t0 + k*dir]) for
/// k = 0 .. max_steps-1, with the scalar loop's exact semantics: the
/// running score accumulates Score(q, t); a strictly better running
/// score updates best/steps; the walk stops when the running score falls
/// to best - xdrop or below. `dir` is +1 (rightward) or -1 (leftward);
/// max_steps must keep every index in range. Identical results at every
/// level — kAvx2 merely takes the blockwise path.
DiagExtension ExtendDiagonal(std::span<const seq::Symbol> query,
                             std::span<const seq::Symbol> target, uint64_t q0,
                             uint64_t t0, int dir, uint64_t max_steps,
                             const score::SubstitutionMatrix& matrix,
                             score::ScoreT xdrop, SimdLevel level);

namespace internal {
/// AVX2 body (defined in sw_avx2.cc); only called when dispatch proved
/// AVX2 runnable.
DiagExtension ExtendDiagonalAvx2(std::span<const seq::Symbol> query,
                                 std::span<const seq::Symbol> target,
                                 uint64_t q0, uint64_t t0, int dir,
                                 uint64_t max_steps,
                                 const score::SubstitutionMatrix& matrix,
                                 score::ScoreT xdrop);
/// Portable body, shared by the scalar level and the ≤ 8-step tails of
/// the vector path.
DiagExtension ExtendDiagonalScalar(std::span<const seq::Symbol> query,
                                   std::span<const seq::Symbol> target,
                                   uint64_t q0, uint64_t t0, int dir,
                                   uint64_t max_steps,
                                   const score::SubstitutionMatrix& matrix,
                                   score::ScoreT xdrop);
}  // namespace internal

}  // namespace simd
}  // namespace align
}  // namespace oasis
