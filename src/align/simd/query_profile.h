// Striped query profile for the SIMD Smith-Waterman kernels.
//
// The striped layout (Farrar 2007): with V vector lanes and a query of
// length m, the query is split into V interleaved stripes of
// seg_len = ceil(m / V) positions. Query position p lives in lane
// p / seg_len at segment index p % seg_len; the word at memory index
// s * V + l therefore holds position l * seg_len + s. One vector load at
// segment s fetches V positions spaced seg_len apart — which is what
// makes the vertical (in-query) DP dependency mostly disappear.
//
// For each residue r of the alphabet the profile precomputes
// Score(query[p], r) + bias for every p, laid out in that striped order,
// so the kernel's inner loop is a single aligned-ish load per segment
// instead of m scattered matrix lookups. Positions past m (padding in the
// last stripe) score 0 and are forced back to 0 through per-segment masks
// (mask8/mask16) so they never contaminate the column maximum.
//
// Scores are biased by -min_score so the whole DP runs in *unsigned*
// saturating arithmetic: H is stored unbiased, the kernel adds the biased
// profile word and subtracts the bias again, and unsigned underflow
// clamps at 0 — exactly the max(0, ...) of local alignment, for free.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "align/simd/dispatch.h"
#include "score/quality.h"
#include "score/substitution_matrix.h"
#include "seq/alphabet.h"

namespace oasis {
namespace align {
namespace simd {

/// Layout constants for one word width (u8 or u16) of a profile.
struct WidthLayout {
  uint32_t lanes = 0;    ///< vector lanes V (0 when !viable)
  uint32_t seg_len = 0;  ///< segments per stripe, ceil(m / lanes)
  uint32_t stride = 0;   ///< words per striped column, seg_len * lanes
  uint32_t bias = 0;     ///< -min_score, added to every profile entry
  bool viable = false;   ///< scores + gap fit this width (see Build rules)
};

/// Per-query, per-matrix score lanes, built once and reused across every
/// target in a scan. Immutable after construction; safe to share across
/// threads. The query span is copied — the profile does not alias it.
class QueryProfile {
 public:
  /// Builds the profile for `level`'s lane widths. A kScalar level (or an
  /// empty query) yields a profile with no viable widths; callers then
  /// use the scalar kernel. Precondition: every query symbol < alphabet
  /// size (terminators are never aligned).
  QueryProfile(std::span<const seq::Symbol> query,
               const score::SubstitutionMatrix& matrix, SimdLevel level);

  /// Quality-expanded profile: the striped columns cover the
  /// quality.effective_sigma() *effective* target symbols
  /// (bin * sigma + residue) instead of the sigma residues, scored with
  /// quality.ScoreEffective. The kernels are oblivious — they index
  /// columns by whatever codes the target span carries — so a target
  /// re-coded with score::QualityAdjust::EffectiveTarget runs through
  /// them unchanged. Layout constants (bias, viability) come from the raw
  /// matrix, which stays sound because every adjusted score is clamped
  /// into [matrix.min_score(), matrix.max_score()]. `quality` must
  /// outlive the profile.
  QueryProfile(std::span<const seq::Symbol> query,
               const score::QualityAdjust& quality, SimdLevel level);

  /// Level the lanes were laid out for.
  SimdLevel level() const { return level_; }
  /// Scoring matrix the profile was built from (must outlive it).
  const score::SubstitutionMatrix& matrix() const { return *matrix_; }
  /// Quality tables the lanes were scored with, or null for a plain
  /// (residue-column) profile. Non-null means targets MUST be re-coded to
  /// effective symbols before hitting the kernels.
  const score::QualityAdjust* quality() const { return quality_; }
  /// Query length m.
  uint32_t query_len() const { return query_len_; }
  /// The copied query symbols.
  std::span<const seq::Symbol> query() const { return query_; }

  /// 8-bit layout; check .viable before touching lanes8()/mask8().
  const WidthLayout& u8() const { return u8_; }
  /// 16-bit layout; check .viable before touching lanes16()/mask16().
  const WidthLayout& u16() const { return u16_; }

  /// Biased 8-bit lanes: column code r (a residue, or an effective
  /// symbol for quality profiles) starts at r * u8().stride.
  const uint8_t* lanes8() const { return lanes8_.data(); }
  /// Biased 16-bit lanes, same layout with u16()'s constants.
  const uint16_t* lanes16() const { return lanes16_.data(); }
  /// 8-bit padding masks: one striped column; 0xFF for real query
  /// positions, 0x00 for padding.
  const uint8_t* mask8() const { return mask8_.data(); }
  /// 16-bit padding masks (0xFFFF / 0x0000).
  const uint16_t* mask16() const { return mask16_.data(); }

 private:
  std::vector<seq::Symbol> query_;
  const score::SubstitutionMatrix* matrix_;
  const score::QualityAdjust* quality_ = nullptr;
  SimdLevel level_;
  uint32_t query_len_;
  WidthLayout u8_, u16_;
  std::vector<uint8_t> lanes8_, mask8_;
  std::vector<uint16_t> lanes16_, mask16_;
};

}  // namespace simd
}  // namespace align
}  // namespace oasis
