#include "align/simd/sw_kernels.h"

namespace oasis {
namespace align {
namespace simd {

SequenceHit AlignStriped(const QueryProfile& profile,
                         std::span<const seq::Symbol> target,
                         AlignStats* stats, StripedScratch* scratch,
                         AlignWorkspace* scalar_ws) {
  const SimdLevel level = profile.level();
  SequenceHit hit;
  bool done = false;

  if (level != SimdLevel::kScalar) {
    // Rung 1: unsigned saturating 8-bit lanes.
    if (profile.u8().viable) {
      const StripedResult r =
          level == SimdLevel::kAvx2
              ? internal::StripedU8Avx2(profile, target, scratch)
              : internal::StripedU8Sse4(profile, target, scratch);
      if (!r.overflow) {
        hit.score = r.score;
        hit.query_end = r.query_end;
        hit.target_end = r.target_end;
        done = true;
      }
    }
    // Rung 2: 16-bit lanes, on 8-bit overflow or when 8-bit was never
    // viable for this matrix.
    if (!done && profile.u16().viable) {
      const StripedResult r =
          level == SimdLevel::kAvx2
              ? internal::StripedU16Avx2(profile, target, scratch)
              : internal::StripedU16Sse4(profile, target, scratch);
      if (!r.overflow) {
        hit.score = r.score;
        hit.query_end = r.query_end;
        hit.target_end = r.target_end;
        done = true;
      }
    }
  }

  // Rung 3: the scalar kernel — also the path for kScalar profiles and
  // scores beyond 16 bits. Stats stay out of AlignPair here; the unified
  // accounting below matches its per-column sums exactly.
  if (!done) {
    hit = AlignPair(profile.query(), target, profile.matrix(),
                    /*stats=*/nullptr, scalar_ws);
  }

  if (stats != nullptr) {
    stats->columns_expanded += target.size();
    stats->cells_computed += target.size() * profile.query_len();
  }
  return hit;
}

}  // namespace simd
}  // namespace align
}  // namespace oasis
