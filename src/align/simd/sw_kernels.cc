#include "align/simd/sw_kernels.h"

#include "util/logging.h"

namespace oasis {
namespace align {
namespace simd {

namespace {

// The vector rungs of the overflow ladder, shared by the plain and the
// quality entry points. `kernel_target` carries whatever codes the
// profile's columns were built for (raw residues, or effective symbols
// for a quality profile) — the kernel bodies only ever use it as a
// column index. Returns true when some width produced the exact result.
bool RunVectorLadder(const QueryProfile& profile,
                     std::span<const seq::Symbol> kernel_target,
                     StripedScratch* scratch, SequenceHit* hit) {
  const SimdLevel level = profile.level();
  if (level == SimdLevel::kScalar) return false;

  // Rung 1: unsigned saturating 8-bit lanes.
  if (profile.u8().viable) {
    const StripedResult r =
        level == SimdLevel::kAvx2
            ? internal::StripedU8Avx2(profile, kernel_target, scratch)
            : internal::StripedU8Sse4(profile, kernel_target, scratch);
    if (!r.overflow) {
      hit->score = r.score;
      hit->query_end = r.query_end;
      hit->target_end = r.target_end;
      return true;
    }
  }
  // Rung 2: 16-bit lanes, on 8-bit overflow or when 8-bit was never
  // viable for this matrix.
  if (profile.u16().viable) {
    const StripedResult r =
        level == SimdLevel::kAvx2
            ? internal::StripedU16Avx2(profile, kernel_target, scratch)
            : internal::StripedU16Sse4(profile, kernel_target, scratch);
    if (!r.overflow) {
      hit->score = r.score;
      hit->query_end = r.query_end;
      hit->target_end = r.target_end;
      return true;
    }
  }
  return false;
}

}  // namespace

SequenceHit AlignStriped(const QueryProfile& profile,
                         std::span<const seq::Symbol> target,
                         AlignStats* stats, StripedScratch* scratch,
                         AlignWorkspace* scalar_ws) {
  OASIS_DCHECK(profile.quality() == nullptr)
      << "quality profiles need AlignStripedQuality (re-coded targets)";
  SequenceHit hit;
  bool done = RunVectorLadder(profile, target, scratch, &hit);

  // Rung 3: the scalar kernel — also the path for kScalar profiles and
  // scores beyond 16 bits. Stats stay out of AlignPair here; the unified
  // accounting below matches its per-column sums exactly.
  if (!done) {
    hit = AlignPair(profile.query(), target, profile.matrix(),
                    /*stats=*/nullptr, scalar_ws);
  }

  if (stats != nullptr) {
    stats->columns_expanded += target.size();
    stats->cells_computed += target.size() * profile.query_len();
  }
  return hit;
}

SequenceHit AlignStripedQuality(const QueryProfile& profile,
                                std::span<const seq::Symbol> target,
                                std::span<const uint8_t> target_quals,
                                AlignStats* stats, StripedScratch* scratch,
                                AlignWorkspace* scalar_ws) {
  const score::QualityAdjust* quality = profile.quality();
  OASIS_CHECK(quality != nullptr)
      << "AlignStripedQuality needs a quality-expanded profile";

  SequenceHit hit;
  bool done = false;
  if (profile.level() != SimdLevel::kScalar &&
      (profile.u8().viable || profile.u16().viable)) {
    std::vector<seq::Symbol> local_codes;
    std::vector<seq::Symbol>* codes =
        scratch != nullptr ? &scratch->effective_target : &local_codes;
    quality->EffectiveTarget(target, target_quals, codes);
    done = RunVectorLadder(profile, *codes, scratch, &hit);
  }

  // Scalar rung: the quality-aware scalar kernel keeps the vector and
  // scalar paths bit-identical, exactly like the plain ladder.
  if (!done) {
    hit = AlignPairQuality(profile.query(), target, *quality, target_quals,
                           /*stats=*/nullptr, scalar_ws);
  }

  if (stats != nullptr) {
    stats->columns_expanded += target.size();
    stats->cells_computed += target.size() * profile.query_len();
  }
  return hit;
}

}  // namespace simd
}  // namespace align
}  // namespace oasis
