// Striped Smith-Waterman kernel entry points (linear / fixed gap model).
//
// AlignStriped() is the vector counterpart of align::AlignPair: same
// score, same tie-broken end coordinates, same AlignStats accounting —
// byte-identical by contract (tests/simd_parity_test.cc fuzzes this).
//
// Overflow ladder: the kernel first runs in unsigned saturating 8-bit
// lanes. Saturating arithmetic can only *under*-estimate a cell, and any
// saturated cell reads back exactly MaxWord - bias, so "best reached
// MaxWord - bias" is a sound overflow detector: when it fires the pair is
// re-run in 16-bit lanes, and past 16 bits (scores above 65535 - bias) it
// falls back to the scalar kernel. Widths whose layout is not viable at
// all (profile entries or the gap magnitude do not fit the word — see
// QueryProfile) are skipped up front.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "align/simd/query_profile.h"
#include "align/smith_waterman.h"

namespace oasis {
namespace align {
namespace simd {

/// Reusable DP scratch for the striped kernels: two striped H columns,
/// stored as raw bytes so one buffer serves both word widths. Grown on
/// demand; reuse across targets is what keeps the kernel allocation-free
/// per pair. Not thread-safe (one per worker).
struct StripedScratch {
  std::vector<uint8_t> h_store;  ///< striped column being written
  std::vector<uint8_t> h_load;   ///< striped column of the previous target symbol
  /// Effective-symbol re-coding of the current target (quality path only;
  /// see AlignStripedQuality). Reused across targets like the H columns.
  std::vector<seq::Symbol> effective_target;
};

/// Outcome of one width's striped run (internal to the ladder, exposed
/// for the parity tests).
struct StripedResult {
  bool overflow = false;     ///< lane width saturated; re-run wider
  score::ScoreT score = 0;   ///< best local score (valid when !overflow)
  uint64_t query_end = 0;    ///< 0-based inclusive query end of the best cell
  uint64_t target_end = 0;   ///< 0-based inclusive target end of the best cell
};

/// Runs the striped kernel for `profile`'s level against one target,
/// walking the 8 → 16 → scalar overflow ladder. Byte-identical to
/// AlignPair(profile.query(), target, profile.matrix(), stats): same
/// score, same tie-broken ends, same stats accounting. `scratch` and
/// `scalar_ws` may be null (local buffers are used); pass both when
/// scanning many targets. A profile with no viable width (kScalar level,
/// empty query, oversized scores) degrades to the scalar kernel.
SequenceHit AlignStriped(const QueryProfile& profile,
                         std::span<const seq::Symbol> target,
                         AlignStats* stats, StripedScratch* scratch,
                         AlignWorkspace* scalar_ws);

/// Quality-weighted AlignStriped. `profile` must have been built with the
/// quality constructor (profile.quality() != nullptr); the target is
/// re-coded to effective symbols (bin * sigma + residue) in
/// scratch->effective_target and pushed through the same 8 → 16 → scalar
/// ladder — the vector kernel bodies run unchanged, only the column codes
/// and lane contents differ. Byte-identical to AlignPairQuality(
/// profile.query(), target, *profile.quality(), target_quals, stats):
/// same score, same tie-broken ends, same stats accounting.
/// `target_quals` holds one phred value per target symbol.
SequenceHit AlignStripedQuality(const QueryProfile& profile,
                                std::span<const seq::Symbol> target,
                                std::span<const uint8_t> target_quals,
                                AlignStats* stats, StripedScratch* scratch,
                                AlignWorkspace* scalar_ws);

namespace internal {
/// Per-ISA, per-width kernel bodies, defined in sw_avx2.cc / sw_sse4.cc.
/// Only called when dispatch proved the ISA runnable (never from the
/// stub builds). Each runs one width and reports overflow instead of
/// walking the ladder itself.
StripedResult StripedU8Avx2(const QueryProfile& profile,
                            std::span<const seq::Symbol> target,
                            StripedScratch* scratch);
/// 16-bit AVX2 body (see StripedU8Avx2).
StripedResult StripedU16Avx2(const QueryProfile& profile,
                             std::span<const seq::Symbol> target,
                             StripedScratch* scratch);
/// 8-bit SSE4.1 body (see StripedU8Avx2).
StripedResult StripedU8Sse4(const QueryProfile& profile,
                            std::span<const seq::Symbol> target,
                            StripedScratch* scratch);
/// 16-bit SSE4.1 body (see StripedU8Avx2).
StripedResult StripedU16Sse4(const QueryProfile& profile,
                             std::span<const seq::Symbol> target,
                             StripedScratch* scratch);
}  // namespace internal

}  // namespace simd
}  // namespace align
}  // namespace oasis
