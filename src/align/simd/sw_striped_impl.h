// Shared body of the striped Smith-Waterman kernel, templated over an
// ISA-traits struct. Included ONLY by sw_avx2.cc and sw_sse4.cc — each of
// those translation units is compiled with its own -m flag, so this
// header must never be included from generic code.
//
// A traits struct T provides:
//   T::Vec            vector register type
//   T::Word           lane word (uint8_t or uint16_t)
//   T::kLanes         lane count V
//   Zero/Set1/Load/Store, AddSat/SubSat (unsigned saturating), Max
//   (unsigned), And, ShiftLanesUp (one lane toward higher lanes, zero
//   fill), AnyGreater (unsigned a > b in any lane).
//
// The recurrence (linear gap, biased unsigned arithmetic):
//   H[p][j] = max(0, H[p-1][j-1] + S(p, t_j), H[p][j-1] - G, H[p-1][j] - G)
// The first three terms vectorize directly in the striped layout; the
// last (query-gap chain, F) is resolved Farrar-style: one in-stripe pass,
// then a lazy correction loop that re-walks the column while any lane's
// F can still improve a stored cell.

#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "align/simd/sw_kernels.h"

namespace oasis {
namespace align {
namespace simd {
namespace internal {

template <typename T>
StripedResult RunStriped(const QueryProfile& profile,
                         const typename T::Word* lanes,
                         const typename T::Word* masks,
                         const WidthLayout& layout, uint32_t max_word,
                         std::span<const seq::Symbol> target,
                         StripedScratch* scratch) {
  using Vec = typename T::Vec;
  using Word = typename T::Word;
  const uint32_t V = T::kLanes;
  const uint32_t seg_len = layout.seg_len;
  const uint32_t stride = layout.stride;
  const uint32_t query_len = profile.query_len();
  const Word gap_mag =
      static_cast<Word>(-profile.matrix().gap_penalty());

  StripedScratch local;
  if (scratch == nullptr) scratch = &local;
  scratch->h_store.assign(static_cast<size_t>(stride) * sizeof(Word), 0);
  scratch->h_load.assign(static_cast<size_t>(stride) * sizeof(Word), 0);
  Word* store = reinterpret_cast<Word*>(scratch->h_store.data());
  Word* load = reinterpret_cast<Word*>(scratch->h_load.data());

  const Vec vGap = T::Set1(gap_mag);
  const Vec vBias = T::Set1(static_cast<Word>(layout.bias));

  StripedResult out;
  score::ScoreT best = 0;
  Vec vBest = T::Zero();
  // Any cell that saturated reads back exactly max_word - bias, and
  // saturation only ever lowers values, so reaching this threshold is a
  // sound (if slightly conservative) overflow signal.
  const uint32_t overflow_at = max_word - layout.bias;

  for (uint64_t j = 0; j < target.size(); ++j) {
    const Word* column = lanes + static_cast<size_t>(target[j]) * stride;
    std::swap(store, load);
    // Diagonal input of segment 0: the previous column's last segment,
    // shifted one lane up so lane l sees position l*seg_len - 1 (lane 0
    // gets the zero boundary).
    Vec vH = T::ShiftLanesUp(T::Load(load + (seg_len - 1) * V));
    Vec vF = T::Zero();
    Vec vColMax = T::Zero();
    for (uint32_t s = 0; s < seg_len; ++s) {
      // Biased diagonal step; unsigned saturation at zero is exactly the
      // max(0, .) of local alignment.
      vH = T::SubSat(T::AddSat(vH, T::Load(column + s * V)), vBias);
      vH = T::Max(vH, T::SubSat(T::Load(load + s * V), vGap));  // target gap
      vH = T::Max(vH, vF);                                      // query gap
      vH = T::And(vH, T::Load(masks + s * V));  // padding stays zero
      vColMax = T::Max(vColMax, vH);
      T::Store(store + s * V, vH);
      // Linear gap: F_next = max(F, H) - G, and H >= F after the max
      // above, so H - G alone carries the chain.
      vF = T::SubSat(vH, vGap);
      vH = T::Load(load + s * V);  // next segment's diagonal source
    }
    // Lazy-F correction (Farrar): chains that cross stripe boundaries.
    // Continue while any lane's F could still beat a stored cell's own
    // outgoing F (the canonical, slightly conservative check).
    vF = T::ShiftLanesUp(vF);
    uint32_t s = 0;
    Vec stored = T::Load(store);
    while (T::AnyGreater(vF, T::SubSat(stored, vGap))) {
      stored = T::Max(stored, vF);
      stored = T::And(stored, T::Load(masks + s * V));
      vColMax = T::Max(vColMax, stored);
      T::Store(store + s * V, stored);
      vF = T::SubSat(vF, vGap);
      ++s;
      if (s == seg_len) {
        s = 0;
        vF = T::ShiftLanesUp(vF);
      }
      stored = T::Load(store + s * V);
    }

    if (T::AnyGreater(vColMax, vBest)) {
      // This column may beat the running best. Rescan it in ascending
      // query order with a strict compare — exactly the scalar update
      // rule, so ties break to the smallest query_end and the earliest
      // column keeps priority.
      score::ScoreT col_best = best;
      uint64_t col_pos = 0;
      bool improved = false;
      for (uint32_t l = 0; l < V; ++l) {
        const uint32_t lane_base = l * seg_len;
        if (lane_base >= query_len) break;
        for (uint32_t s2 = 0; s2 < seg_len; ++s2) {
          const uint32_t p = lane_base + s2;
          if (p >= query_len) break;
          const score::ScoreT v =
              static_cast<score::ScoreT>(store[s2 * V + l]);
          if (v > col_best) {
            col_best = v;
            col_pos = p;
            improved = true;
          }
        }
      }
      if (improved) {
        best = col_best;
        out.score = best;
        out.query_end = col_pos;
        out.target_end = j;
        if (static_cast<uint32_t>(best) >= overflow_at) {
          out.overflow = true;
          return out;
        }
        vBest = T::Set1(static_cast<Word>(best));
      }
    }
  }
  return out;
}

}  // namespace internal
}  // namespace simd
}  // namespace align
}  // namespace oasis
