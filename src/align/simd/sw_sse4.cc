// SSE4.1 bodies of the striped Smith-Waterman kernel (128-bit lanes).
// Compiled with -msse4.1 when available; same stub discipline as
// sw_avx2.cc. SSE4.1 (not SSE2) because the 16-bit ladder rung needs
// _mm_max_epu16. The ungapped diagonal scorer has no SSE4 body — its
// vector path is built on AVX2 gathers, so the SSE4 level scores
// diagonals with the scalar loop.

#include "align/simd/dispatch.h"
#include "align/simd/sw_kernels.h"
#include "util/logging.h"

#if defined(__SSE4_1__) && !defined(OASIS_DISABLE_SIMD)

#include <smmintrin.h>

#include "align/simd/sw_striped_impl.h"

namespace oasis {
namespace align {
namespace simd {
namespace internal {

namespace {

struct Sse4U8 {
  using Vec = __m128i;
  using Word = uint8_t;
  static constexpr uint32_t kLanes = 16;
  static Vec Zero() { return _mm_setzero_si128(); }
  static Vec Set1(Word w) { return _mm_set1_epi8(static_cast<char>(w)); }
  static Vec Load(const Word* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void Store(Word* p, Vec v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static Vec AddSat(Vec a, Vec b) { return _mm_adds_epu8(a, b); }
  static Vec SubSat(Vec a, Vec b) { return _mm_subs_epu8(a, b); }
  static Vec Max(Vec a, Vec b) { return _mm_max_epu8(a, b); }
  static Vec And(Vec a, Vec b) { return _mm_and_si128(a, b); }
  static Vec ShiftLanesUp(Vec a) { return _mm_slli_si128(a, 1); }
  static bool AnyGreater(Vec a, Vec b) {
    return _mm_movemask_epi8(_mm_cmpeq_epi8(_mm_subs_epu8(a, b),
                                            _mm_setzero_si128())) != 0xFFFF;
  }
};

struct Sse4U16 {
  using Vec = __m128i;
  using Word = uint16_t;
  static constexpr uint32_t kLanes = 8;
  static Vec Zero() { return _mm_setzero_si128(); }
  static Vec Set1(Word w) { return _mm_set1_epi16(static_cast<short>(w)); }
  static Vec Load(const Word* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void Store(Word* p, Vec v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static Vec AddSat(Vec a, Vec b) { return _mm_adds_epu16(a, b); }
  static Vec SubSat(Vec a, Vec b) { return _mm_subs_epu16(a, b); }
  static Vec Max(Vec a, Vec b) { return _mm_max_epu16(a, b); }
  static Vec And(Vec a, Vec b) { return _mm_and_si128(a, b); }
  static Vec ShiftLanesUp(Vec a) { return _mm_slli_si128(a, 2); }
  static bool AnyGreater(Vec a, Vec b) {
    return _mm_movemask_epi8(_mm_cmpeq_epi16(_mm_subs_epu16(a, b),
                                             _mm_setzero_si128())) != 0xFFFF;
  }
};

}  // namespace

bool Sse4Compiled() { return true; }

StripedResult StripedU8Sse4(const QueryProfile& profile,
                            std::span<const seq::Symbol> target,
                            StripedScratch* scratch) {
  return RunStriped<Sse4U8>(profile, profile.lanes8(), profile.mask8(),
                            profile.u8(), 255, target, scratch);
}

StripedResult StripedU16Sse4(const QueryProfile& profile,
                             std::span<const seq::Symbol> target,
                             StripedScratch* scratch) {
  return RunStriped<Sse4U16>(profile, profile.lanes16(), profile.mask16(),
                             profile.u16(), 65535, target, scratch);
}

}  // namespace internal
}  // namespace simd
}  // namespace align
}  // namespace oasis

#else  // !__SSE4_1__ || OASIS_DISABLE_SIMD

namespace oasis {
namespace align {
namespace simd {
namespace internal {

bool Sse4Compiled() { return false; }

StripedResult StripedU8Sse4(const QueryProfile&, std::span<const seq::Symbol>,
                            StripedScratch*) {
  OASIS_CHECK(false) << "SSE4 kernel called in a build without SSE4.1";
  return {};
}

StripedResult StripedU16Sse4(const QueryProfile&, std::span<const seq::Symbol>,
                             StripedScratch*) {
  OASIS_CHECK(false) << "SSE4 kernel called in a build without SSE4.1";
  return {};
}

}  // namespace internal
}  // namespace simd
}  // namespace align
}  // namespace oasis

#endif  // __SSE4_1__
