// Runtime CPU dispatch for the SIMD alignment kernels.
//
// Two separate notions, deliberately kept apart:
//
//   SimdMode  — what the caller *asked for* (EngineOptions::simd_mode,
//               the --simd flag). kAuto means "best available".
//   SimdLevel — what the kernels *actually run as*, resolved once from a
//               mode plus the CPU + build capabilities.
//
// Resolution rules (ResolveLevel):
//   kAuto → best level both compiled in and supported by this CPU
//   kAvx2 / kSse4 → that level if runnable here, else scalar
//   kOff  → scalar, always
//
// CheckSupported() is the strict variant for option validation: a forced
// ISA the machine cannot run is an error there, not a silent fallback —
// a deployment that pins --simd avx2 wants to know when it degrades.
//
// Builds with OASIS_DISABLE_SIMD (cmake -DOASIS_DISABLE_SIMD=ON), non-x86
// targets, and compilers without -mavx2/-msse4.1 all resolve to scalar;
// the kernels compile out and every caller takes the scalar path.

#pragma once

#include <string_view>

#include "util/status.h"

namespace oasis {
namespace align {
namespace simd {

/// Requested dispatch mode: what the user asked for on the CLI or in
/// EngineOptions. Resolved to a SimdLevel once at startup.
enum class SimdMode {
  kAuto,  ///< pick the best level this build + CPU supports
  kAvx2,  ///< force AVX2 (error under CheckSupported if unavailable)
  kSse4,  ///< force SSE4.1 (error under CheckSupported if unavailable)
  kOff,   ///< scalar kernels only
};

/// Resolved dispatch level: what the kernels actually run as.
enum class SimdLevel {
  kScalar,  ///< portable scalar code
  kSse4,    ///< 128-bit kernels (SSE4.1)
  kAvx2,    ///< 256-bit kernels (AVX2)
};

/// Flag spelling of `mode` ("auto", "avx2", "sse4", "off").
const char* SimdModeName(SimdMode mode);

/// Human-readable name of `level` ("scalar", "sse4", "avx2").
const char* SimdLevelName(SimdLevel level);

/// Best level this build + CPU supports. Probed once (thread-safe) and
/// cached; returns kScalar under OASIS_DISABLE_SIMD or off x86.
SimdLevel DetectLevel();

/// True when `level`'s kernels are compiled in and runnable on this CPU.
/// kScalar is always supported.
bool LevelSupported(SimdLevel level);

/// Resolves a requested mode to a runnable level (see file comment for
/// the rules). Never fails: unsupported forced ISAs degrade to kScalar.
SimdLevel ResolveLevel(SimdMode mode);

/// Strict validation for option surfaces: InvalidArgument when `mode`
/// forces an ISA this build + CPU cannot run; OK otherwise (kAuto and
/// kOff always pass).
util::Status CheckSupported(SimdMode mode);

/// Parses "auto" | "avx2" | "sse4" | "off" (exact, case-sensitive — the
/// flag discipline of util/flag_parse). InvalidArgument on anything else.
util::StatusOr<SimdMode> ParseSimdMode(std::string_view text);

namespace internal {
/// Defined in sw_avx2.cc / sw_sse4.cc: true when that translation unit
/// was compiled with real vector kernels (x86 + ISA flag + SIMD enabled),
/// false when it holds only stubs. DetectLevel() consults these so a
/// build without -mavx2 never dispatches to a stub.
bool Avx2Compiled();
/// SSE4.1 counterpart of Avx2Compiled().
bool Sse4Compiled();
}  // namespace internal

}  // namespace simd
}  // namespace align
}  // namespace oasis
