// Biological alphabets and symbol encoding.
//
// All sequences are stored *encoded*: each residue is a small integer code
// in [0, size()). Terminator symbols used by the generalized suffix tree
// live above the alphabet range (see seq/database.h) and are never produced
// by an Alphabet.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace oasis {
namespace seq {

/// Encoded residue. Values >= Alphabet::size() are reserved for terminators.
using Symbol = uint32_t;

enum class AlphabetKind { kDna, kProtein };

/// Maps residue characters <-> dense integer codes.
///
/// DNA:      ACGT (4 symbols). 'N' and other IUPAC ambiguity codes are
///           rejected by Encode (callers sanitize; the workload generators
///           never emit them).
/// Protein:  The 20 standard amino acids ARNDCQEGHILKMFPSTWYV, plus the
///           ambiguity codes B, Z and X accepted by PAM/BLOSUM tables
///           (23 symbols), matching the matrices in score/matrices_data.cc.
class Alphabet {
 public:
  static const Alphabet& Dna();
  static const Alphabet& Protein();
  static const Alphabet& Get(AlphabetKind kind);

  AlphabetKind kind() const { return kind_; }

  /// Number of distinct residue codes.
  uint32_t size() const { return size_; }

  /// Residue characters in code order, e.g. "ACGT".
  std::string_view letters() const { return letters_; }

  /// True when `c` (case-insensitive) is a residue of this alphabet.
  bool IsValidChar(char c) const { return char_to_code_[Upper(c)] >= 0; }

  /// Code for character `c`. Precondition: IsValidChar(c).
  Symbol CharToCode(char c) const;

  /// Character for code `code`. Precondition: code < size().
  char CodeToChar(Symbol code) const;

  /// Encodes a residue string. Fails with InvalidArgument on any character
  /// outside the alphabet (whitespace included).
  util::StatusOr<std::vector<Symbol>> Encode(std::string_view text) const;

  /// Decodes codes back to characters. Terminator codes (>= size()) are
  /// rendered as '$'.
  std::string Decode(const std::vector<Symbol>& codes) const;

 private:
  Alphabet(AlphabetKind kind, std::string_view letters);

  static char Upper(char c) {
    return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
  }

  AlphabetKind kind_;
  uint32_t size_;
  std::string letters_;
  std::array<int8_t, 256> char_to_code_;
};

}  // namespace seq
}  // namespace oasis
