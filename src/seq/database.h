// SequenceDatabase: the concatenated, terminator-separated symbol store that
// the generalized suffix tree and all search algorithms operate on.
//
// Layout of the concatenated buffer for sequences s0..s_{k-1}:
//
//   [ s0 symbols | T0 | s1 symbols | T1 | ... | s_{k-1} symbols | T_{k-1} ]
//
// where terminator Ti = alphabet.size() + i is *unique per sequence*. Unique
// terminators make Ukkonen's algorithm over the concatenation produce a true
// generalized suffix tree: no path can span a sequence boundary, and no two
// sequences' suffixes can collapse onto a shared terminator edge.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/sequence.h"
#include "util/status.h"

namespace oasis {
namespace seq {

/// Global position in the concatenated buffer.
using GlobalPos = uint64_t;
/// Sequence ordinal within the database.
using SequenceId = uint32_t;

/// A (sequence, offset) coordinate resolved from a global position.
struct SequenceCoord {
  SequenceId sequence_id = 0;
  uint64_t offset = 0;  ///< 0-based offset within the sequence.
};

/// Immutable multi-sequence database over one alphabet.
class SequenceDatabase {
 public:
  /// Builds the concatenated representation. Fails if `sequences` is empty
  /// or any sequence is empty.
  static util::StatusOr<SequenceDatabase> Build(const Alphabet& alphabet,
                                                std::vector<Sequence> sequences);

  const Alphabet& alphabet() const { return *alphabet_; }

  size_t num_sequences() const { return sequences_.size(); }
  const Sequence& sequence(SequenceId id) const { return sequences_[id]; }
  const std::vector<Sequence>& sequences() const { return sequences_; }

  /// Concatenated symbols including terminators.
  const std::vector<Symbol>& symbols() const { return symbols_; }
  /// Total length including terminators.
  uint64_t total_length() const { return symbols_.size(); }
  /// Total residue count excluding terminators.
  uint64_t num_residues() const { return symbols_.size() - sequences_.size(); }

  /// First terminator code; terminator for sequence i is kTermBase + i.
  Symbol terminator_base() const { return alphabet_->size(); }
  /// True when `s` is any sequence terminator.
  bool IsTerminator(Symbol s) const { return s >= alphabet_->size(); }
  /// Terminator symbol of sequence `id`.
  Symbol TerminatorOf(SequenceId id) const { return alphabet_->size() + id; }

  /// Global position of the first symbol of sequence `id`.
  GlobalPos SequenceStart(SequenceId id) const { return starts_[id]; }
  /// Global position one past the last residue (== terminator position).
  GlobalPos SequenceEnd(SequenceId id) const {
    return starts_[id] + sequences_[id].size();
  }

  /// Maps a global position (residue or terminator) to (sequence, offset).
  /// Precondition: pos < total_length().
  SequenceCoord Locate(GlobalPos pos) const;

  /// Sequence id owning global position `pos` (terminators belong to their
  /// sequence). Precondition: pos < total_length().
  SequenceId SequenceOf(GlobalPos pos) const { return Locate(pos).sequence_id; }

 private:
  SequenceDatabase(const Alphabet* alphabet, std::vector<Sequence> sequences,
                   std::vector<Symbol> symbols, std::vector<GlobalPos> starts)
      : alphabet_(alphabet),
        sequences_(std::move(sequences)),
        symbols_(std::move(symbols)),
        starts_(std::move(starts)) {}

  const Alphabet* alphabet_ = nullptr;
  std::vector<Sequence> sequences_;
  std::vector<Symbol> symbols_;
  std::vector<GlobalPos> starts_;  ///< start position per sequence, ascending.
};

}  // namespace seq
}  // namespace oasis
