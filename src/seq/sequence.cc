#include "seq/sequence.h"

#include <algorithm>

#include "util/logging.h"

namespace oasis {
namespace seq {

util::StatusOr<Sequence> Sequence::FromString(const Alphabet& alphabet,
                                              std::string id,
                                              std::string_view residues) {
  OASIS_ASSIGN_OR_RETURN(std::vector<Symbol> codes, alphabet.Encode(residues));
  Sequence sequence(std::move(id), std::move(codes));
  std::vector<uint8_t> mask(residues.size(), 0);
  for (size_t i = 0; i < residues.size(); ++i) {
    if (residues[i] >= 'a' && residues[i] <= 'z') mask[i] = 1;
  }
  sequence.set_mask(std::move(mask));
  return sequence;
}

void Sequence::set_mask(std::vector<uint8_t> mask) {
  OASIS_CHECK(mask.empty() || mask.size() == symbols_.size())
      << "mask length " << mask.size() << " != sequence length "
      << symbols_.size();
  const bool any =
      std::any_of(mask.begin(), mask.end(), [](uint8_t m) { return m != 0; });
  if (!any) mask.clear();
  mask_ = std::move(mask);
}

void Sequence::set_quals(std::vector<uint8_t> quals) {
  OASIS_CHECK(quals.empty() || quals.size() == symbols_.size())
      << "quality length " << quals.size() << " != sequence length "
      << symbols_.size();
  quals_ = std::move(quals);
}

std::string Sequence::ToString(const Alphabet& alphabet) const {
  std::string text = alphabet.Decode(symbols_);
  if (!mask_.empty()) {
    for (size_t i = 0; i < text.size() && i < mask_.size(); ++i) {
      if (mask_[i] && text[i] >= 'A' && text[i] <= 'Z') {
        text[i] = static_cast<char>(text[i] - 'A' + 'a');
      }
    }
  }
  return text;
}

}  // namespace seq
}  // namespace oasis
