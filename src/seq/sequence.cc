#include "seq/sequence.h"

namespace oasis {
namespace seq {

util::StatusOr<Sequence> Sequence::FromString(const Alphabet& alphabet,
                                              std::string id,
                                              std::string_view residues) {
  OASIS_ASSIGN_OR_RETURN(std::vector<Symbol> codes, alphabet.Encode(residues));
  return Sequence(std::move(id), std::move(codes));
}

}  // namespace seq
}  // namespace oasis
