// FASTQ reading: sequencing reads with per-base phred qualities.
//
// The parser is strict about record structure — FASTQ's grammar is only
// unambiguous in its rigid four-line form ('@' and '+' are both legal
// *quality* characters, so quality lines cannot be recognized by content):
//
//   @id [description]
//   RESIDUES                (one line, non-empty)
//   +[id]                   (separator; a non-empty tail must repeat the id)
//   QUALITIES               (one line, same length as RESIDUES)
//
// Malformed input (truncated records, quality/sequence length mismatch,
// quality characters below the encoding offset, empty ids or sequences)
// fails with an InvalidArgument naming the record position and line
// number. CRLF line endings and lowercase (soft-masked) residues are
// accepted, like the FASTA parser.

#pragma once

#include <istream>
#include <string>
#include <vector>

#include "seq/sequence.h"
#include "util/status.h"

namespace oasis {
namespace seq {

/// Quality-encoding offset: the ASCII value of phred score 0.
enum class FastqOffset {
  kSanger = 33,    ///< Sanger / Illumina 1.8+ ("phred+33")
  kIllumina = 64,  ///< legacy Illumina 1.3-1.7 ("phred+64")
};

/// Parses `spec` ("sanger" or "illumina") into an offset; any other value
/// is an InvalidArgument naming the accepted spellings.
util::StatusOr<FastqOffset> ParseFastqOffset(const std::string& spec);

/// Parses all FASTQ records from `in`. Each returned Sequence carries its
/// phred qualities (Sequence::quals) and the soft-mask of its lowercase
/// residues (Sequence::mask). Any structural violation fails the whole
/// parse with a record- and line-numbered InvalidArgument.
util::StatusOr<std::vector<Sequence>> ReadFastq(
    std::istream& in, const Alphabet& alphabet,
    FastqOffset offset = FastqOffset::kSanger);

/// Parses a FASTQ file from disk.
util::StatusOr<std::vector<Sequence>> ReadFastqFile(
    const std::string& path, const Alphabet& alphabet,
    FastqOffset offset = FastqOffset::kSanger);

/// Writes records as four-line FASTQ. Records without qualities are
/// rejected (emitting fake qualities would launder FASTA into FASTQ).
util::Status WriteFastq(std::ostream& out, const Alphabet& alphabet,
                        const std::vector<Sequence>& records,
                        FastqOffset offset = FastqOffset::kSanger);

}  // namespace seq
}  // namespace oasis
