// FASTA reading and writing.
//
// The parser is deliberately strict about structure (a record must start
// with '>', and a record with no residues is an error, not a silent skip)
// but tolerant about formatting: blank lines, Windows (CRLF) line endings
// and lowercase residues are accepted. Characters outside the alphabet
// fail the parse with a line-numbered error.

#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "seq/sequence.h"
#include "util/status.h"

namespace oasis {
namespace seq {

/// Parses all FASTA records from `in`. The header line `>id description`
/// is split at the first whitespace.
util::StatusOr<std::vector<Sequence>> ReadFasta(std::istream& in,
                                                const Alphabet& alphabet);

/// Parses a FASTA file from disk.
util::StatusOr<std::vector<Sequence>> ReadFastaFile(const std::string& path,
                                                    const Alphabet& alphabet);

/// Writes records to `out`, wrapping residue lines at `width` characters.
util::Status WriteFasta(std::ostream& out, const Alphabet& alphabet,
                        const std::vector<Sequence>& records, int width = 70);

/// Writes records to a file.
util::Status WriteFastaFile(const std::string& path, const Alphabet& alphabet,
                            const std::vector<Sequence>& records, int width = 70);

}  // namespace seq
}  // namespace oasis
