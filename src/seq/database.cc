#include "seq/database.h"

#include <algorithm>

#include "util/logging.h"

namespace oasis {
namespace seq {

util::StatusOr<SequenceDatabase> SequenceDatabase::Build(
    const Alphabet& alphabet, std::vector<Sequence> sequences) {
  if (sequences.empty()) {
    return util::Status::InvalidArgument("database must contain at least one sequence");
  }
  uint64_t total = 0;
  for (size_t i = 0; i < sequences.size(); ++i) {
    if (sequences[i].empty()) {
      return util::Status::InvalidArgument("sequence " + std::to_string(i) + " ('" +
                                           sequences[i].id() + "') is empty");
    }
    total += sequences[i].size() + 1;  // +1 terminator
  }

  std::vector<Symbol> symbols;
  symbols.reserve(total);
  std::vector<GlobalPos> starts;
  starts.reserve(sequences.size());

  for (size_t i = 0; i < sequences.size(); ++i) {
    starts.push_back(symbols.size());
    const std::vector<Symbol>& src = sequences[i].symbols();
    for (Symbol s : src) {
      if (s >= alphabet.size()) {
        return util::Status::InvalidArgument(
            "sequence '" + sequences[i].id() +
            "' contains a symbol code outside the alphabet");
      }
    }
    symbols.insert(symbols.end(), src.begin(), src.end());
    symbols.push_back(alphabet.size() + static_cast<Symbol>(i));
  }
  OASIS_CHECK_EQ(symbols.size(), total);

  return SequenceDatabase(&alphabet, std::move(sequences), std::move(symbols),
                          std::move(starts));
}

SequenceCoord SequenceDatabase::Locate(GlobalPos pos) const {
  OASIS_DCHECK(pos < symbols_.size());
  auto it = std::upper_bound(starts_.begin(), starts_.end(), pos);
  SequenceId id = static_cast<SequenceId>(it - starts_.begin() - 1);
  return SequenceCoord{id, pos - starts_[id]};
}

}  // namespace seq
}  // namespace oasis
