#include "seq/fasta.h"

#include <fstream>

namespace oasis {
namespace seq {

namespace {
void StripTrailingCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}
}  // namespace

util::StatusOr<std::vector<Sequence>> ReadFasta(std::istream& in,
                                                const Alphabet& alphabet) {
  std::vector<Sequence> records;
  std::string line;
  std::string id;
  std::string description;
  std::string residues;
  bool in_record = false;
  size_t line_no = 0;

  auto flush = [&]() -> util::Status {
    if (residues.empty()) {
      return util::Status::InvalidArgument(
          "record '" + id + "': empty sequence (no residue lines)");
    }
    auto encoded = alphabet.Encode(residues);
    if (!encoded.ok()) {
      return util::Status::InvalidArgument("record '" + id + "': " +
                                           encoded.status().message());
    }
    Sequence record(std::move(id), std::move(description),
                    std::move(encoded).value());
    // Lowercase residues are soft-masked (case-preserving round-trip:
    // ToString renders them lowercase again).
    std::vector<uint8_t> mask(residues.size(), 0);
    for (size_t i = 0; i < residues.size(); ++i) {
      if (residues[i] >= 'a' && residues[i] <= 'z') mask[i] = 1;
    }
    record.set_mask(std::move(mask));
    records.push_back(std::move(record));
    id.clear();
    description.clear();
    residues.clear();
    return util::Status::OK();
  };

  while (std::getline(in, line)) {
    ++line_no;
    StripTrailingCr(&line);
    if (line.empty()) continue;
    if (line[0] == '>') {
      if (in_record) OASIS_RETURN_NOT_OK(flush());
      in_record = true;
      size_t ws = line.find_first_of(" \t");
      if (ws == std::string::npos) {
        id = line.substr(1);
      } else {
        id = line.substr(1, ws - 1);
        size_t desc_start = line.find_first_not_of(" \t", ws);
        if (desc_start != std::string::npos) description = line.substr(desc_start);
      }
      if (id.empty()) {
        return util::Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": empty FASTA identifier");
      }
    } else {
      if (!in_record) {
        return util::Status::InvalidArgument(
            "line " + std::to_string(line_no) +
            ": residue data before any '>' header");
      }
      residues += line;
    }
  }
  if (in_record) OASIS_RETURN_NOT_OK(flush());
  return records;
}

util::StatusOr<std::vector<Sequence>> ReadFastaFile(const std::string& path,
                                                    const Alphabet& alphabet) {
  std::ifstream in(path);
  if (!in) return util::Status::IOError("cannot open '" + path + "' for reading");
  return ReadFasta(in, alphabet);
}

util::Status WriteFasta(std::ostream& out, const Alphabet& alphabet,
                        const std::vector<Sequence>& records, int width) {
  if (width <= 0) return util::Status::InvalidArgument("line width must be positive");
  for (const Sequence& rec : records) {
    out << '>' << rec.id();
    if (!rec.description().empty()) out << ' ' << rec.description();
    out << '\n';
    std::string text = rec.ToString(alphabet);
    for (size_t pos = 0; pos < text.size(); pos += static_cast<size_t>(width)) {
      out << text.substr(pos, static_cast<size_t>(width)) << '\n';
    }
    if (text.empty()) out << '\n';
  }
  if (!out) return util::Status::IOError("FASTA write failed");
  return util::Status::OK();
}

util::Status WriteFastaFile(const std::string& path, const Alphabet& alphabet,
                            const std::vector<Sequence>& records, int width) {
  std::ofstream out(path);
  if (!out) return util::Status::IOError("cannot open '" + path + "' for writing");
  return WriteFasta(out, alphabet, records, width);
}

}  // namespace seq
}  // namespace oasis
