#include "seq/alphabet.h"

#include "util/logging.h"

namespace oasis {
namespace seq {

Alphabet::Alphabet(AlphabetKind kind, std::string_view letters)
    : kind_(kind), size_(static_cast<uint32_t>(letters.size())), letters_(letters) {
  char_to_code_.fill(-1);
  for (uint32_t i = 0; i < size_; ++i) {
    char up = Upper(letters_[i]);
    char_to_code_[static_cast<unsigned char>(up)] = static_cast<int8_t>(i);
    // Accept lowercase input as well.
    if (up >= 'A' && up <= 'Z') {
      char_to_code_[static_cast<unsigned char>(up - 'A' + 'a')] =
          static_cast<int8_t>(i);
    }
  }
}

const Alphabet& Alphabet::Dna() {
  static const Alphabet alpha(AlphabetKind::kDna, "ACGT");
  return alpha;
}

const Alphabet& Alphabet::Protein() {
  // Code order matches the row/column order of the built-in PAM/BLOSUM
  // tables in score/matrices_data.cc.
  static const Alphabet alpha(AlphabetKind::kProtein, "ARNDCQEGHILKMFPSTWYVBZX");
  return alpha;
}

const Alphabet& Alphabet::Get(AlphabetKind kind) {
  return kind == AlphabetKind::kDna ? Dna() : Protein();
}

Symbol Alphabet::CharToCode(char c) const {
  int8_t code = char_to_code_[static_cast<unsigned char>(c)];
  OASIS_DCHECK(code >= 0) << "invalid residue '" << c << "'";
  return static_cast<Symbol>(code);
}

char Alphabet::CodeToChar(Symbol code) const {
  OASIS_DCHECK(code < size_);
  return letters_[code];
}

util::StatusOr<std::vector<Symbol>> Alphabet::Encode(std::string_view text) const {
  std::vector<Symbol> out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    int8_t code = char_to_code_[static_cast<unsigned char>(c)];
    if (code < 0) {
      return util::Status::InvalidArgument(
          "character '" + std::string(1, c) + "' at position " +
          std::to_string(i) + " is not in the alphabet");
    }
    out.push_back(static_cast<Symbol>(code));
  }
  return out;
}

std::string Alphabet::Decode(const std::vector<Symbol>& codes) const {
  std::string out;
  out.reserve(codes.size());
  for (Symbol s : codes) out.push_back(s < size_ ? letters_[s] : '$');
  return out;
}

}  // namespace seq
}  // namespace oasis
