#include "seq/fastq.h"

#include <algorithm>
#include <fstream>

namespace oasis {
namespace seq {

namespace {

void StripTrailingCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

/// Maximum phred value a FASTQ byte can encode (printable ASCII tops out
/// at '~' == 126; Sanger's range is '!'..'~').
constexpr int kMaxQualChar = 126;

util::Status RecordError(size_t record_no, const std::string& id,
                         size_t line_no, const std::string& what) {
  std::string label = "record " + std::to_string(record_no);
  if (!id.empty()) label += " ('" + id + "')";
  return util::Status::InvalidArgument(label + ", line " +
                                       std::to_string(line_no) + ": " + what);
}

}  // namespace

util::StatusOr<FastqOffset> ParseFastqOffset(const std::string& spec) {
  if (spec == "sanger") return FastqOffset::kSanger;
  if (spec == "illumina") return FastqOffset::kIllumina;
  return util::Status::InvalidArgument(
      "unknown FASTQ quality encoding '" + spec +
      "' (expected 'sanger' or 'illumina')");
}

util::StatusOr<std::vector<Sequence>> ReadFastq(std::istream& in,
                                                const Alphabet& alphabet,
                                                FastqOffset offset) {
  std::vector<Sequence> records;
  std::string line;
  size_t line_no = 0;
  size_t record_no = 0;
  const int base = static_cast<int>(offset);

  // Reads the next line, skipping blank lines only *between* records
  // (mid-record a blank line is a truncation, reported by the caller).
  auto next_line = [&](bool skip_blank) -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      StripTrailingCr(&line);
      if (line.empty() && skip_blank) continue;
      return true;
    }
    return false;
  };

  while (next_line(/*skip_blank=*/true)) {
    ++record_no;
    // Line 1: '@id [description]'.
    if (line[0] != '@') {
      return RecordError(record_no, "", line_no,
                         "expected '@' record header, got '" +
                             line.substr(0, 20) + "'");
    }
    std::string id, description;
    const size_t ws = line.find_first_of(" \t");
    if (ws == std::string::npos) {
      id = line.substr(1);
    } else {
      id = line.substr(1, ws - 1);
      const size_t desc_start = line.find_first_not_of(" \t", ws);
      if (desc_start != std::string::npos) description = line.substr(desc_start);
    }
    if (id.empty()) {
      return RecordError(record_no, "", line_no, "empty FASTQ identifier");
    }

    // Line 2: residues.
    if (!next_line(/*skip_blank=*/false)) {
      return RecordError(record_no, id, line_no,
                         "truncated record: missing sequence line");
    }
    if (line.empty()) {
      return RecordError(record_no, id, line_no, "empty sequence line");
    }
    const std::string residues = line;
    const size_t seq_line_no = line_no;

    // Line 3: '+' separator, optionally repeating the id.
    if (!next_line(/*skip_blank=*/false)) {
      return RecordError(record_no, id, line_no,
                         "truncated record: missing '+' separator line");
    }
    if (line.empty() || line[0] != '+') {
      return RecordError(record_no, id, line_no,
                         "expected '+' separator line, got '" +
                             line.substr(0, 20) + "'");
    }
    if (line.size() > 1) {
      // A non-empty tail must repeat the record id (a full header copy —
      // id plus description — is also accepted).
      const std::string tail = line.substr(1);
      const bool matches = tail == id || (tail.size() > id.size() &&
                                          tail.compare(0, id.size(), id) == 0 &&
                                          (tail[id.size()] == ' ' ||
                                           tail[id.size()] == '\t'));
      if (!matches) {
        return RecordError(record_no, id, line_no,
                           "'+' separator repeats a different id ('" + tail +
                               "')");
      }
    }

    // Line 4: qualities — exactly as long as the sequence. '@' and '+'
    // are legal quality characters here; only the length disambiguates.
    if (!next_line(/*skip_blank=*/false)) {
      return RecordError(record_no, id, line_no,
                         "truncated record: missing quality line");
    }
    if (line.size() != residues.size()) {
      return RecordError(
          record_no, id, line_no,
          "quality length " + std::to_string(line.size()) +
              " != sequence length " + std::to_string(residues.size()));
    }
    std::vector<uint8_t> quals(line.size());
    for (size_t i = 0; i < line.size(); ++i) {
      const int c = static_cast<unsigned char>(line[i]);
      if (c < base || c > kMaxQualChar) {
        return RecordError(
            record_no, id, line_no,
            "quality character '" + std::string(1, line[i]) + "' at column " +
                std::to_string(i + 1) + " outside the " +
                (offset == FastqOffset::kSanger ? "sanger" : "illumina") +
                " encoding range");
      }
      quals[i] = static_cast<uint8_t>(c - base);
    }

    auto encoded = alphabet.Encode(residues);
    if (!encoded.ok()) {
      return RecordError(record_no, id, seq_line_no,
                         std::string(encoded.status().message()));
    }
    Sequence record(std::move(id), std::move(description),
                    std::move(encoded).value());
    std::vector<uint8_t> mask(residues.size(), 0);
    for (size_t i = 0; i < residues.size(); ++i) {
      if (residues[i] >= 'a' && residues[i] <= 'z') mask[i] = 1;
    }
    record.set_mask(std::move(mask));
    record.set_quals(std::move(quals));
    records.push_back(std::move(record));
  }
  return records;
}

util::StatusOr<std::vector<Sequence>> ReadFastqFile(const std::string& path,
                                                    const Alphabet& alphabet,
                                                    FastqOffset offset) {
  std::ifstream in(path);
  if (!in) {
    return util::Status::IOError("cannot open '" + path + "' for reading");
  }
  return ReadFastq(in, alphabet, offset);
}

util::Status WriteFastq(std::ostream& out, const Alphabet& alphabet,
                        const std::vector<Sequence>& records,
                        FastqOffset offset) {
  const int base = static_cast<int>(offset);
  for (const Sequence& rec : records) {
    if (rec.quals().size() != rec.size()) {
      return util::Status::InvalidArgument(
          "record '" + rec.id() + "' carries no qualities; cannot be "
          "written as FASTQ");
    }
    out << '@' << rec.id();
    if (!rec.description().empty()) out << ' ' << rec.description();
    out << '\n' << rec.ToString(alphabet) << '\n' << '+' << '\n';
    std::string quals(rec.size(), '!');
    for (size_t i = 0; i < rec.size(); ++i) {
      const int c = std::min(base + rec.quals()[i], kMaxQualChar);
      quals[i] = static_cast<char>(c);
    }
    out << quals << '\n';
  }
  if (!out) return util::Status::IOError("FASTQ write failed");
  return util::Status::OK();
}

}  // namespace seq
}  // namespace oasis
