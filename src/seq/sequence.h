// A named, encoded biological sequence.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "seq/alphabet.h"
#include "util/status.h"

namespace oasis {
namespace seq {

/// An immutable encoded sequence with an identifier and optional
/// description (FASTA header fields).
class Sequence {
 public:
  Sequence() = default;
  Sequence(std::string id, std::vector<Symbol> symbols)
      : id_(std::move(id)), symbols_(std::move(symbols)) {}
  Sequence(std::string id, std::string description, std::vector<Symbol> symbols)
      : id_(std::move(id)),
        description_(std::move(description)),
        symbols_(std::move(symbols)) {}

  /// Encodes `residues` with `alphabet`. Fails on invalid characters.
  static util::StatusOr<Sequence> FromString(const Alphabet& alphabet,
                                             std::string id,
                                             std::string_view residues);

  const std::string& id() const { return id_; }
  const std::string& description() const { return description_; }
  const std::vector<Symbol>& symbols() const { return symbols_; }
  size_t size() const { return symbols_.size(); }
  bool empty() const { return symbols_.empty(); }
  Symbol operator[](size_t i) const { return symbols_[i]; }

  /// Residue string under `alphabet`.
  std::string ToString(const Alphabet& alphabet) const {
    return alphabet.Decode(symbols_);
  }

 private:
  std::string id_;
  std::string description_;
  std::vector<Symbol> symbols_;
};

}  // namespace seq
}  // namespace oasis
