// A named, encoded biological sequence.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "seq/alphabet.h"
#include "util/status.h"

namespace oasis {
namespace seq {

/// An encoded sequence with an identifier, optional description (FASTA
/// header fields), an optional soft-mask and optional base qualities.
///
/// The mask and the qualities are *annotations*: they never change the
/// encoded symbols, only how downstream layers treat them. A masked
/// position renders lowercase in ToString (so soft-masked FASTA survives a
/// round-trip), is excluded from suffix-tree seeding when the index is
/// built with mask_mode=soft, and is skipped by the BLAST word scan on
/// such an index. Qualities are raw phred values (FASTQ input) consumed by
/// score::QualityAdjust.
class Sequence {
 public:
  Sequence() = default;
  Sequence(std::string id, std::vector<Symbol> symbols)
      : id_(std::move(id)), symbols_(std::move(symbols)) {}
  Sequence(std::string id, std::string description, std::vector<Symbol> symbols)
      : id_(std::move(id)),
        description_(std::move(description)),
        symbols_(std::move(symbols)) {}

  /// Encodes `residues` with `alphabet`. Fails on invalid characters.
  /// Lowercase residues are recorded as soft-masked positions.
  static util::StatusOr<Sequence> FromString(const Alphabet& alphabet,
                                             std::string id,
                                             std::string_view residues);

  const std::string& id() const { return id_; }
  const std::string& description() const { return description_; }
  const std::vector<Symbol>& symbols() const { return symbols_; }
  size_t size() const { return symbols_.size(); }
  bool empty() const { return symbols_.empty(); }
  Symbol operator[](size_t i) const { return symbols_[i]; }

  /// Soft-mask flags, one byte (0/1) per residue; empty when no position
  /// is masked.
  const std::vector<uint8_t>& mask() const { return mask_; }
  /// True when at least one position is soft-masked.
  bool has_mask() const { return !mask_.empty(); }

  /// Phred base qualities, one byte per residue; empty when the record
  /// carried none (FASTA input).
  const std::vector<uint8_t>& quals() const { return quals_; }
  /// True when the record carries base qualities.
  bool has_quals() const { return !quals_.empty(); }

  /// Installs a soft-mask. `mask` must be empty or exactly size() long;
  /// an all-zero mask is normalized to empty (so has_mask() means "some
  /// position is masked", never "a vector happens to be attached").
  void set_mask(std::vector<uint8_t> mask);

  /// Installs phred qualities. `quals` must be empty or exactly size()
  /// long.
  void set_quals(std::vector<uint8_t> quals);

  /// Residue string under `alphabet`; soft-masked positions render
  /// lowercase, so writing the string back through the parser round-trips
  /// the mask.
  std::string ToString(const Alphabet& alphabet) const;

 private:
  std::string id_;
  std::string description_;
  std::vector<Symbol> symbols_;
  std::vector<uint8_t> mask_;   ///< empty, or one 0/1 flag per residue
  std::vector<uint8_t> quals_;  ///< empty, or one phred value per residue
};

}  // namespace seq
}  // namespace oasis
