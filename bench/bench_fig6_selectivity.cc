// Figure 6: effect of selectivity — OASIS mean query time vs query length
// for E = 1 (highly selective) and E = 20000 (relaxed).
//
// Expected shape (paper §4.4): E=1 is much faster on the shortest queries
// (near exact suffix-tree search); the two curves converge as the query
// length grows.

#include "bench_common.h"

namespace oasis {
namespace bench {
namespace {

int Run() {
  BenchEnv env = MakeProteinEnv();
  PrintHeader("Figure 6: effect of selectivity, E=1 vs E=20000", env);

  core::OasisSearch search(env.tree, env.matrix);

  struct Row {
    double e1_s = 0, e20000_s = 0;
    uint64_t e1_results = 0, e20000_results = 0;
    int count = 0;
  };
  std::map<uint32_t, Row> rows;

  for (const auto& q : env.queries) {
    const uint32_t len = static_cast<uint32_t>(q.symbols.size());
    Row& row = rows[(len / 8) * 8];
    for (double evalue : {1.0, 20000.0}) {
      score::ScoreT min_score = score::MinScoreForEValue(
          env.karlin, evalue, len, env.db_residues());
      core::OasisOptions options;
      options.min_score = min_score;
      util::Timer timer;
      auto results = search.SearchAll(q.symbols, options);
      OASIS_CHECK(results.ok());
      double elapsed = timer.ElapsedSeconds();
      if (evalue == 1.0) {
        row.e1_s += elapsed;
        row.e1_results += results->size();
      } else {
        row.e20000_s += elapsed;
        row.e20000_results += results->size();
      }
    }
    ++row.count;
  }

  std::printf("%-12s %8s %12s %12s %10s %12s %12s\n", "query_len", "queries",
              "E=1 (s)", "E=20000 (s)", "ratio", "E=1 hits", "E=2e4 hits");
  for (const auto& [bucket, row] : rows) {
    std::printf("%3u-%-8u %8d %12.4f %12.4f %10.1f %12.1f %12.1f\n", bucket,
                bucket + 7, row.count, row.e1_s / row.count,
                row.e20000_s / row.count,
                row.e1_s > 0 ? row.e20000_s / row.e1_s : 0.0,
                static_cast<double>(row.e1_results) / row.count,
                static_cast<double>(row.e20000_results) / row.count);
  }
  std::printf("\npaper shape check: E=1 much faster at the shortest lengths;"
              " gap narrows as length grows; E=20000 returns far more hits\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
