// Batched concurrent queries (extension beyond the paper, toward the
// production north star): wall-clock throughput of Engine::SearchBatch as
// the worker count grows. Every worker searches the engine's one shared
// packed tree through the one sharded buffer pool, so cache warmth is
// shared across the whole batch; the speedup ceiling is the machine's core
// count and per-shard lock contention (see bench_shared_pool for the
// shared-vs-replica comparison).
//
// Scaling knobs: the usual bench_common environment variables, plus
//   OASIS_BATCH_THREADS  max worker count to sweep to   (default 8)

#include "bench_common.h"

namespace oasis {
namespace bench {
namespace {

int Run() {
  BenchEnv env = MakeProteinEnv();
  PrintHeader("Batch throughput: Engine::SearchBatch worker sweep, E=1000",
              env);

  std::vector<api::SearchRequest> requests;
  for (const auto& q : env.queries) {
    api::SearchRequest request(q.symbols);
    request.EValue(1000.0);
    requests.push_back(std::move(request));
  }

  // Sequential reference (and correctness anchor for the sweep).
  util::Timer timer;
  uint64_t total_results = 0;
  for (const auto& request : requests) {
    auto outcome = env.engine->SearchAll(request);
    OASIS_CHECK(outcome.ok()) << outcome.status().ToString();
    total_results += outcome->results.size();
  }
  const double sequential_s = timer.ElapsedSeconds();

  std::printf("%zu queries, %llu results; sequential: %.4fs\n\n",
              requests.size(),
              static_cast<unsigned long long>(total_results), sequential_s);
  std::printf("%-10s %12s %10s %14s\n", "threads", "batch(s)", "speedup",
              "queries/s");

  const uint32_t max_threads =
      static_cast<uint32_t>(util::EnvInt64("OASIS_BATCH_THREADS", 8));
  for (uint32_t threads = 1; threads <= max_threads; threads *= 2) {
    api::BatchOptions options;
    options.threads = threads;
    timer.Restart();
    auto outcome = env.engine->SearchBatch(requests, options);
    const double batch_s = timer.ElapsedSeconds();
    OASIS_CHECK(outcome.ok()) << outcome.status().ToString();

    uint64_t batch_results = 0;
    for (const auto& item : *outcome) batch_results += item.results.size();
    OASIS_CHECK_EQ(batch_results, total_results)
        << "batch results diverge from sequential";

    std::printf("%-10u %12.4f %10.2f %14.1f\n", threads, batch_s,
                sequential_s / batch_s,
                static_cast<double>(requests.size()) / batch_s);
  }
  std::printf("\nshape check: batch(1) ~= sequential; speedup grows toward "
              "the core count\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
