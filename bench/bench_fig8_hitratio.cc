// Figure 8: buffer-pool hit ratios per suffix-tree component (symbols /
// internal nodes / leaves) across pool sizes.
//
// Expected shape (paper §4.5): the level-first-clustered internal nodes
// keep the highest hit ratio at small pools; symbol and leaf accesses are
// "by their nature random" (ordered by database position) and suffer first.

#include "bench_common.h"

namespace oasis {
namespace bench {
namespace {

int Run() {
  BenchEnv env = MakeProteinEnv();
  PrintHeader("Figure 8: per-component buffer hit ratios", env);

  const uint64_t index_bytes = env.tree->index_bytes();
  struct Fraction {
    double value;
    const char* label;  ///< JSON metric suffix ("p6" = pool 1/16 of index)
  };
  const Fraction fractions[] = {{1.0 / 16, "p6"},
                                {1.0 / 8, "p12"},
                                {1.0 / 4, "p25"},
                                {1.0 / 2, "p50"},
                                {1.0, "p100"}};
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<std::pair<std::string, uint64_t>> counts;

  std::printf("%-16s %12s %12s %12s %12s\n", "pool (MiB)", "symbols",
              "internal", "leaves", "overall");
  for (const auto& [fraction, label] : fractions) {
    uint64_t pool_bytes =
        static_cast<uint64_t>(static_cast<double>(index_bytes) * fraction);
    storage::BufferPool pool(pool_bytes);
    auto tree = suffix::PackedSuffixTree::Open(env.dir->path(), &pool);
    OASIS_CHECK(tree.ok());
    core::OasisSearch search(tree->get(), env.matrix);

    for (const auto& q : env.queries) {
      score::ScoreT min_score = score::MinScoreForEValue(
          env.karlin, 20000.0, q.symbols.size(), env.db_residues());
      core::OasisOptions options;
      options.min_score = min_score;
      auto results = search.SearchAll(q.symbols, options);
      OASIS_CHECK(results.ok());
    }

    const storage::SegmentStats sym = pool.stats((*tree)->symbols_segment());
    const storage::SegmentStats internal =
        pool.stats((*tree)->internal_segment());
    const storage::SegmentStats leaves = pool.stats((*tree)->leaves_segment());
    std::printf("%-16.2f %12.3f %12.3f %12.3f %12.3f\n",
                static_cast<double>(pool.capacity_bytes()) / (1 << 20),
                sym.hit_ratio(), internal.hit_ratio(), leaves.hit_ratio(),
                pool.TotalStats().hit_ratio());
    const std::string prefix = std::string("hit.") + label + ".";
    metrics.emplace_back(prefix + "symbols", sym.hit_ratio());
    metrics.emplace_back(prefix + "internal", internal.hit_ratio());
    metrics.emplace_back(prefix + "leaves", leaves.hit_ratio());
    metrics.emplace_back(prefix + "overall", pool.TotalStats().hit_ratio());
    // Raw request totals: the gate's guard against a vacuous run (zero
    // requests make hit_ratio() a perfect-looking 1.0).
    const std::string requests = std::string("requests.") + label + ".";
    counts.emplace_back(requests + "symbols", sym.requests);
    counts.emplace_back(requests + "internal", internal.requests);
    counts.emplace_back(requests + "leaves", leaves.requests);
    counts.emplace_back(requests + "overall", pool.TotalStats().requests);
  }
  std::printf("\npaper shape check: internal nodes (clustered layout) retain "
              "the best ratio at small pools\n");
  WriteBenchJson("fig8_hitratio", metrics, counts);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
