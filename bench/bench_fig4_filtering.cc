// Figure 4: filtering efficiency — number of DP columns expanded by OASIS
// vs Smith-Waterman, per query length, E = 20000.
//
// Expected shape (paper §4.3): OASIS expands a few percent of S-W's
// columns on average (paper: 3.9% mean, 18.5% worst case), growing with
// query length.

#include <algorithm>

#include "align/smith_waterman.h"
#include "bench_common.h"

namespace oasis {
namespace bench {
namespace {

int Run() {
  BenchEnv env = MakeProteinEnv();
  PrintHeader("Figure 4: columns expanded, OASIS vs S-W, E=20000", env);

  core::OasisSearch search(env.tree, env.matrix);

  struct Row {
    uint64_t oasis_cols = 0;
    uint64_t sw_cols = 0;
    int count = 0;
  };
  std::map<uint32_t, Row> rows;
  double worst_pct = 0.0;
  double sum_pct = 0.0;
  int n = 0;

  for (const auto& q : env.queries) {
    const uint32_t len = static_cast<uint32_t>(q.symbols.size());
    score::ScoreT min_score = score::MinScoreForEValue(
        env.karlin, 20000.0, len, env.db_residues());

    core::OasisOptions options;
    options.min_score = min_score;
    core::OasisStats stats;
    auto results = search.SearchAll(q.symbols, options, &stats);
    OASIS_CHECK(results.ok());

    // S-W expands one column per database residue, independent of query.
    const uint64_t sw_cols = env.db_residues();

    Row& row = rows[(len / 8) * 8];
    row.oasis_cols += stats.columns_expanded;
    row.sw_cols += sw_cols;
    ++row.count;

    double pct = 100.0 * static_cast<double>(stats.columns_expanded) /
                 static_cast<double>(sw_cols);
    worst_pct = std::max(worst_pct, pct);
    sum_pct += pct;
    ++n;
  }

  std::printf("%-12s %8s %16s %16s %10s\n", "query_len", "queries",
              "OASIS columns", "S-W columns", "OASIS/S-W");
  for (const auto& [bucket, row] : rows) {
    std::printf("%3u-%-8u %8d %16.0f %16.0f %9.2f%%\n", bucket, bucket + 7,
                row.count,
                static_cast<double>(row.oasis_cols) / row.count,
                static_cast<double>(row.sw_cols) / row.count,
                100.0 * static_cast<double>(row.oasis_cols) /
                    static_cast<double>(row.sw_cols));
  }
  std::printf("\nmean per-query ratio: %.2f%%   worst case: %.2f%%\n",
              sum_pct / n, worst_pct);
  std::printf("paper shape check: mean ~3.9%%, worst ~18.5%% (scale-dependent;"
              " must stay far below 100%%)\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
