// Figure 3: mean query time vs query length — OASIS vs BLAST vs S-W,
// E = 20000 (the BLAST-recommended value for short protein queries),
// PAM30 over the SWISS-PROT-shaped database.
//
// Expected shape (paper §4.3): OASIS is an order of magnitude or more
// faster than S-W at every short query length, and comparable to (often
// faster than) BLAST.

#include <algorithm>

#include "align/smith_waterman.h"
#include "bench_common.h"
#include "blast/blast.h"

namespace oasis {
namespace bench {
namespace {

constexpr double kEValue = 20000.0;

int Run() {
  BenchEnv env = MakeProteinEnv();
  PrintHeader("Figure 3: mean query time (s) vs query length, E=20000", env);

  core::OasisSearch oasis_search(env.tree, env.matrix);

  struct Row {
    double oasis_s = 0, blast_s = 0, sw_s = 0;
    int count = 0;
  };
  std::map<uint32_t, Row> rows;

  for (const auto& q : env.queries) {
    const uint32_t len = static_cast<uint32_t>(q.symbols.size());
    Row& row = rows[(len / 8) * 8];

    // --- OASIS ---
    score::ScoreT min_score = score::MinScoreForEValue(
        env.karlin, kEValue, len, env.db_residues());
    core::OasisOptions options;
    options.min_score = min_score;
    util::Timer timer;
    auto oasis_results = oasis_search.SearchAll(q.symbols, options);
    OASIS_CHECK(oasis_results.ok()) << oasis_results.status().ToString();
    row.oasis_s += timer.ElapsedSeconds();

    // --- BLAST ---
    if (len >= 3) {
      blast::BlastOptions blast_options;
      blast_options.evalue_cutoff = kEValue;
      auto prepared =
          blast::BlastQuery::Prepare(q.symbols, *env.matrix, blast_options);
      OASIS_CHECK(prepared.ok());
      timer.Restart();
      auto blast_hits =
          blast::Search(*prepared, *env.db, *env.matrix, env.karlin);
      OASIS_CHECK(blast_hits.ok());
      row.blast_s += timer.ElapsedSeconds();
    }

    // --- S-W ---
    timer.Restart();
    auto sw_hits = align::ScanDatabase(q.symbols, *env.db, *env.matrix,
                                       std::max<score::ScoreT>(min_score, 1));
    row.sw_s += timer.ElapsedSeconds();
    ++row.count;
  }

  std::printf("%-12s %8s %12s %12s %12s %18s\n", "query_len", "queries",
              "OASIS(s)", "BLAST(s)", "S-W(s)", "S-W/OASIS speedup");
  double tot_oasis = 0, tot_blast = 0, tot_sw = 0;
  int tot_n = 0;
  for (const auto& [bucket, row] : rows) {
    std::printf("%3u-%-8u %8d %12.4f %12.4f %12.4f %18.1f\n", bucket,
                bucket + 7, row.count, row.oasis_s / row.count,
                row.blast_s / row.count, row.sw_s / row.count,
                row.oasis_s > 0 ? row.sw_s / row.oasis_s : 0.0);
    tot_oasis += row.oasis_s;
    tot_blast += row.blast_s;
    tot_sw += row.sw_s;
    tot_n += row.count;
  }
  std::printf("%-12s %8d %12.4f %12.4f %12.4f %18.1f\n", "ALL", tot_n,
              tot_oasis / tot_n, tot_blast / tot_n, tot_sw / tot_n,
              tot_sw / tot_oasis);
  std::printf("\npaper shape check: S-W/OASIS speedup >= ~10x on short "
              "queries; OASIS comparable to BLAST\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
