// Space-utilization table (paper §4.2): index size and bytes per symbol for
// the packed suffix tree, across database sizes, with the per-file
// breakdown (symbols / internal nodes / leaves).
//
// Expected shape: bytes/symbol roughly constant across database sizes and
// in the low tens (the paper reports 12.5 B/symbol, "comparable to the
// most compact suffix tree representations").

#include <filesystem>

#include "bench_common.h"
#include "suffix/packed_builder.h"

namespace oasis {
namespace bench {
namespace {

uint64_t FileBytes(const std::string& path) {
  std::error_code ec;
  auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<uint64_t>(size);
}

int Run() {
  std::printf("==================================================================\n");
  std::printf("Space-utilization table (paper S4.2): packed suffix tree\n");
  std::printf("==================================================================\n");
  std::printf("%-14s %10s %12s %12s %12s %12s %10s\n", "residues", "seqs",
              "symbols(B)", "internal(B)", "leaves(B)", "total(B)", "B/sym");

  const uint64_t base =
      static_cast<uint64_t>(util::EnvInt64("OASIS_DB_RESIDUES", 200000));
  for (uint64_t residues : {base / 4, base / 2, base}) {
    workload::ProteinDatabaseOptions options;
    options.target_residues = residues;
    options.seed = static_cast<uint64_t>(util::EnvInt64("OASIS_SEED", 42));
    auto db = workload::GenerateProteinDatabase(options);
    OASIS_CHECK(db.ok());

    util::TempDir dir("space");
    auto tree = suffix::SuffixTree::BuildUkkonen(*db);
    OASIS_CHECK(tree.ok()) << tree.status().ToString();
    OASIS_CHECK(suffix::PackSuffixTree(*tree, dir.path()).ok());

    uint64_t sym = FileBytes(dir.File(suffix::PackedTreeFiles::kSymbols));
    uint64_t internal = FileBytes(dir.File(suffix::PackedTreeFiles::kInternal));
    uint64_t leaves = FileBytes(dir.File(suffix::PackedTreeFiles::kLeaves));
    uint64_t total = sym + internal + leaves +
                     FileBytes(dir.File(suffix::PackedTreeFiles::kMeta));
    std::printf("%-14llu %10zu %12llu %12llu %12llu %12llu %10.2f\n",
                static_cast<unsigned long long>(db->num_residues()),
                db->num_sequences(), static_cast<unsigned long long>(sym),
                static_cast<unsigned long long>(internal),
                static_cast<unsigned long long>(leaves),
                static_cast<unsigned long long>(total),
                static_cast<double>(total) /
                    static_cast<double>(db->num_residues()));
  }
  std::printf("\npaper shape check: ~constant bytes/symbol, same order as the "
              "paper's 12.5 B/symbol\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
