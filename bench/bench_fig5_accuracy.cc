// Figure 5: accuracy — percentage of additional matches returned by OASIS
// over BLAST at the same E = 20000 selectivity.
//
// Expected shape (paper §4.3): OASIS (exact) always returns a superset of
// qualifying matches; the paper measured ~60% more matches than BLAST on
// average.

#include <set>

#include "bench_common.h"
#include "blast/blast.h"

namespace oasis {
namespace bench {
namespace {

int Run() {
  BenchEnv env = MakeProteinEnv();
  PrintHeader("Figure 5: % additional matches, OASIS vs BLAST, E=20000", env);

  core::OasisSearch search(env.tree, env.matrix);

  struct Row {
    uint64_t oasis_matches = 0;
    uint64_t blast_matches = 0;
    uint64_t blast_missed = 0;  // sequences OASIS found and BLAST missed
    int count = 0;
  };
  std::map<uint32_t, Row> rows;

  for (const auto& q : env.queries) {
    const uint32_t len = static_cast<uint32_t>(q.symbols.size());
    if (len < 3) continue;
    score::ScoreT min_score = score::MinScoreForEValue(
        env.karlin, 20000.0, len, env.db_residues());

    core::OasisOptions options;
    options.min_score = min_score;
    auto oasis_results = search.SearchAll(q.symbols, options);
    OASIS_CHECK(oasis_results.ok());

    blast::BlastOptions blast_options;
    blast_options.evalue_cutoff = 20000.0;
    auto prepared =
        blast::BlastQuery::Prepare(q.symbols, *env.matrix, blast_options);
    OASIS_CHECK(prepared.ok());
    auto blast_hits =
        blast::Search(*prepared, *env.db, *env.matrix, env.karlin);
    OASIS_CHECK(blast_hits.ok());

    std::set<seq::SequenceId> blast_set;
    for (const auto& h : *blast_hits) blast_set.insert(h.sequence_id);

    Row& row = rows[(len / 8) * 8];
    row.oasis_matches += oasis_results->size();
    row.blast_matches += blast_hits->size();
    for (const auto& r : *oasis_results) {
      if (blast_set.find(r.sequence_id) == blast_set.end()) {
        ++row.blast_missed;
      }
    }
    ++row.count;
  }

  std::printf("%-12s %8s %14s %14s %16s\n", "query_len", "queries",
              "OASIS matches", "BLAST matches", "%% additional");
  uint64_t tot_oasis = 0, tot_blast = 0;
  for (const auto& [bucket, row] : rows) {
    double additional =
        row.blast_matches > 0
            ? 100.0 * (static_cast<double>(row.oasis_matches) -
                       static_cast<double>(row.blast_matches)) /
                  static_cast<double>(row.blast_matches)
            : (row.oasis_matches > 0 ? 100.0 : 0.0);
    std::printf("%3u-%-8u %8d %14.1f %14.1f %15.1f%%\n", bucket, bucket + 7,
                row.count,
                static_cast<double>(row.oasis_matches) / row.count,
                static_cast<double>(row.blast_matches) / row.count,
                additional);
    tot_oasis += row.oasis_matches;
    tot_blast += row.blast_matches;
  }
  std::printf("\noverall: OASIS %llu vs BLAST %llu (+%.1f%%)\n",
              static_cast<unsigned long long>(tot_oasis),
              static_cast<unsigned long long>(tot_blast),
              tot_blast > 0 ? 100.0 * (static_cast<double>(tot_oasis) -
                                       static_cast<double>(tot_blast)) /
                                  static_cast<double>(tot_blast)
                            : 0.0);
  std::printf("paper shape check: OASIS >= BLAST everywhere (exactness); "
              "paper average ~60%% additional\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
