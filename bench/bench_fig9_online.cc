// Figure 9: online behaviour — the wall-clock time at which the k-th
// result is returned for a single 13-residue query (the paper uses the
// motif DKDGDGCITTKEL, E ~ 30000; we use a 13-residue motif planted by the
// workload generator).
//
// Expected shape (paper §4.6): the first tens of results arrive orders of
// magnitude before the total completion time of S-W or BLAST (paper: first
// 40 results in under 0.04 s out of thousands).

#include <algorithm>

#include "align/smith_waterman.h"
#include "bench_common.h"
#include "blast/blast.h"

namespace oasis {
namespace bench {
namespace {

int Run() {
  BenchEnv env = MakeProteinEnv();
  PrintHeader("Figure 9: online behaviour, 13-residue query, relaxed E", env);

  // Pick (or cut) a 13-residue query from the motif workload.
  std::vector<seq::Symbol> query;
  for (const auto& q : env.queries) {
    if (q.symbols.size() >= 13) {
      query.assign(q.symbols.begin(), q.symbols.begin() + 13);
      break;
    }
  }
  OASIS_CHECK(!query.empty());

  score::ScoreT min_score = score::MinScoreForEValue(
      env.karlin, 30000.0, query.size(), env.db_residues());
  std::printf("query length 13, minScore %d\n\n", min_score);

  core::OasisSearch search(env.tree, env.matrix);
  core::OasisOptions options;
  options.min_score = min_score;

  std::vector<double> arrival;  // arrival[k] = seconds until k-th result
  util::Timer timer;
  auto stats = search.Search(query, options, [&](const core::OasisResult&) {
    arrival.push_back(timer.ElapsedSeconds());
    return true;
  });
  OASIS_CHECK(stats.ok());
  double oasis_total = timer.ElapsedSeconds();

  timer.Restart();
  auto sw_hits = align::ScanDatabase(query, *env.db, *env.matrix, min_score);
  double sw_total = timer.ElapsedSeconds();

  blast::BlastOptions blast_options;
  blast_options.evalue_cutoff = 30000.0;
  auto prepared = blast::BlastQuery::Prepare(query, *env.matrix, blast_options);
  OASIS_CHECK(prepared.ok());
  timer.Restart();
  auto blast_hits = blast::Search(*prepared, *env.db, *env.matrix, env.karlin);
  OASIS_CHECK(blast_hits.ok());
  double blast_total = timer.ElapsedSeconds();

  std::printf("%-10s %16s\n", "rank k", "OASIS t(k) (s)");
  for (size_t k : {size_t{1}, size_t{5}, size_t{10}, size_t{20}, size_t{40},
                   size_t{100}, size_t{400}, size_t{1000}}) {
    if (k <= arrival.size()) {
      std::printf("%-10zu %16.5f\n", k, arrival[k - 1]);
    }
  }
  std::printf("\nviable alignments found: OASIS %zu, S-W %zu, BLAST %zu\n",
              arrival.size(), sw_hits.size(), blast_hits->size());
  std::printf("total times: OASIS %.4f s, S-W %.4f s, BLAST %.4f s\n",
              oasis_total, sw_total, blast_total);
  if (arrival.size() >= 40) {
    std::printf("first 40 results in %.4f s (%.1f%% of OASIS total, %.1f%% of "
                "S-W total)\n",
                arrival[39], 100.0 * arrival[39] / oasis_total,
                100.0 * arrival[39] / sw_total);
  }
  std::printf("paper shape check: top results arrive well before any "
              "complete-scan baseline finishes\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
