// Micro-benchmarks (google-benchmark): component-level throughput numbers
// that contextualize the figure benches — suffix-tree construction,
// partitioned construction, buffer pool fetches, S-W cell rate and OASIS
// query rate vs threshold.

#include <benchmark/benchmark.h>

#include "align/smith_waterman.h"
#include "core/oasis.h"
#include "storage/buffer_pool.h"
#include "suffix/packed_builder.h"
#include "suffix/partitioned_builder.h"
#include "util/env.h"
#include "util/logging.h"
#include "workload/workload.h"

namespace oasis {
namespace {

seq::SequenceDatabase MakeDb(uint64_t residues, uint64_t seed = 42) {
  workload::ProteinDatabaseOptions options;
  options.target_residues = residues;
  options.seed = seed;
  auto db = workload::GenerateProteinDatabase(options);
  OASIS_CHECK(db.ok());
  return std::move(db).value();
}

void BM_UkkonenConstruction(benchmark::State& state) {
  seq::SequenceDatabase db = MakeDb(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    auto tree = suffix::SuffixTree::BuildUkkonen(db);
    OASIS_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree->num_nodes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(db.total_length()));
}
BENCHMARK(BM_UkkonenConstruction)->Arg(1 << 14)->Arg(1 << 16)->Arg(1 << 18);

void BM_PartitionedConstruction(benchmark::State& state) {
  seq::SequenceDatabase db = MakeDb(1 << 15);
  suffix::PartitionedBuildOptions options;
  options.max_suffixes_per_pass = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    auto tree = suffix::BuildPartitioned(db, options);
    OASIS_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree->num_nodes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(db.total_length()));
}
BENCHMARK(BM_PartitionedConstruction)->Arg(1 << 12)->Arg(1 << 20);

void BM_BufferPoolFetchHit(benchmark::State& state) {
  util::TempDir dir("mb");
  seq::SequenceDatabase db = MakeDb(1 << 15);
  auto tree = suffix::SuffixTree::BuildUkkonen(db);
  OASIS_CHECK(tree.ok());
  OASIS_CHECK(suffix::PackSuffixTree(*tree, dir.path()).ok());
  storage::BufferPool pool(64 << 20);
  auto packed = suffix::PackedSuffixTree::Open(dir.path(), &pool);
  OASIS_CHECK(packed.ok());
  uint64_t pos = 0;
  for (auto _ : state) {
    auto page = pool.Fetch((*packed)->symbols_segment(),
                           pos % (*packed)->total_length() / 2048);
    OASIS_CHECK(page.ok());
    benchmark::DoNotOptimize(page->data());
    ++pos;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolFetchHit);

void BM_SmithWatermanCells(benchmark::State& state) {
  seq::SequenceDatabase db = MakeDb(1 << 14);
  workload::MotifQueryOptions q_options;
  q_options.num_queries = 1;
  q_options.min_length = 16;
  q_options.max_length = 16;
  auto queries = workload::GenerateMotifQueries(
      db, score::SubstitutionMatrix::Pam30(), q_options);
  OASIS_CHECK(queries.ok());
  const auto& q = (*queries)[0].symbols;
  for (auto _ : state) {
    align::AlignStats stats;
    auto hits = align::ScanDatabase(q, db, score::SubstitutionMatrix::Pam30(),
                                    1, &stats);
    benchmark::DoNotOptimize(hits.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(db.num_residues()) *
                          static_cast<int64_t>(q.size()));
}
BENCHMARK(BM_SmithWatermanCells);

void BM_OasisQuery(benchmark::State& state) {
  static util::TempDir dir("mo");
  static seq::SequenceDatabase db = MakeDb(1 << 16);
  static storage::BufferPool pool(64 << 20);
  static auto packed = [] {
    auto t = suffix::BuildAndOpenPacked(db, dir.path(), &pool);
    OASIS_CHECK(t.ok());
    return std::move(t).value();
  }();
  workload::MotifQueryOptions q_options;
  q_options.num_queries = 1;
  q_options.min_length = 12;
  q_options.max_length = 12;
  auto queries = workload::GenerateMotifQueries(
      db, score::SubstitutionMatrix::Pam30(), q_options);
  OASIS_CHECK(queries.ok());
  const auto& q = (*queries)[0].symbols;

  core::OasisSearch search(packed.get(), &score::SubstitutionMatrix::Pam30());
  core::OasisOptions options;
  options.min_score = static_cast<score::ScoreT>(state.range(0));
  for (auto _ : state) {
    auto results = search.SearchAll(q, options);
    OASIS_CHECK(results.ok());
    benchmark::DoNotOptimize(results->size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OasisQuery)->Arg(30)->Arg(45)->Arg(60);

}  // namespace
}  // namespace oasis

BENCHMARK_MAIN();
