// Speculative sibling-run readahead + per-cursor fetch memo on a
// cold-cache sibling scan (pooled mode).
//
// The workload walks every internal-node record in level-first order —
// exactly the sibling-run access pattern the packed layout was designed
// for — through a pool holding only a fraction of the internal segment,
// cleared before every round so each round runs cold. Four configurations
// replay the identical trace:
//
//   baseline     every record read is a full pool Fetch; every block a
//                demand miss paid inline
//   memo         a storage::FetchMemo turns the 127 same-block record
//                reads after the first into pool-free pointer reads
//   readahead    a storage::Readahead worker prefetches the next K blocks
//                of the run on every miss, so the demand thread finds
//                loaded frames instead of paying the pread
//   memo+ra      both — the shipping configuration of a pooled engine
//                (EngineOptions::fetch_memo + readahead_blocks)
//
// All four must produce the identical checksum (result parity; the
// byte-for-byte engine-level parity is proven by tests/readahead_test.cc).
// The shape gates, enforced through the exit code and CI:
//
//   memo+ra >= kRequiredCombinedSpeedup x baseline
//   memo+ra >= kRequiredReadaheadGain x memo alone (the readahead win in
//              the shipping configuration, isolated from the memo's)
//   prefetch waste ratio <= kMaxWasteRatio (speculation stays bounded)
//
// An end-to-end query table (same A* workload as the figure benches, cold
// pool per query batch) is printed and recorded in the JSON but not gated:
// query wall-clock on shared CI runners is too noisy to gate, and the
// search's access pattern is only partly sequential.
//
// Scaling knobs: the usual bench_common environment variables, plus
// OASIS_READAHEAD_BLOCKS (default 8) for the speculation window.

#include <vector>

#include "bench_common.h"
#include "storage/readahead.h"
#include "suffix/packed_tree.h"

namespace oasis {
namespace bench {
namespace {

constexpr double kRequiredCombinedSpeedup = 1.25;
constexpr double kRequiredReadaheadGain = 1.03;
constexpr double kMaxWasteRatio = 0.25;

struct ScanConfig {
  const char* name;
  bool memo;
  bool readahead;
};

/// One cold sibling scan: read every internal record in level-first
/// order. Returns the checksum (parity across configs). The caller clears
/// the pool *and* the OS page cache between rounds.
uint64_t ScanOnce(const suffix::PackedSuffixTree& tree,
                  storage::BufferPool& pool, storage::Readahead* readahead,
                  storage::FetchMemo* memo) {
  const uint32_t n = static_cast<uint32_t>(tree.num_internal());
  uint64_t checksum = 0;
  for (uint32_t idx = 0; idx < n; ++idx) {
    auto node = tree.ReadInternal(idx, memo);
    OASIS_CHECK(node.ok()) << node.status().ToString();
    checksum += node->depth() + node->sym_offset;
  }
  // Release memo pins and let speculation finish before the caller clears
  // the pool for the next cold round (Clear requires full quiescence).
  if (memo != nullptr) memo->Clear();
  if (readahead != nullptr) readahead->Drain();
  return checksum;
}

int Run() {
  BenchEnv env = MakeProteinEnv();
  PrintHeader("Sibling-run readahead + fetch memo, cold pooled scans", env);

  const uint32_t k = static_cast<uint32_t>(
      util::EnvInt64("OASIS_READAHEAD_BLOCKS", 8));
  const int rounds = static_cast<int>(util::EnvInt64("OASIS_SCAN_ROUNDS", 5));

  // Pool sized to an eighth of the internal segment (>= 16 frames): big
  // enough that prefetched blocks survive until their demand read, small
  // enough that every round stays miss-dominated — the cold, disk-resident
  // regime readahead exists for.
  const uint32_t block_size = storage::kDefaultBlockSize;
  const uint64_t internal_blocks =
      (env.tree->num_internal() * sizeof(suffix::PackedInternalNode) +
       block_size - 1) / block_size;
  const uint64_t pool_frames = std::max<uint64_t>(16, internal_blocks / 8);

  const ScanConfig configs[] = {
      {"baseline", false, false},
      {"memo", true, false},
      {"readahead", false, true},
      {"memo+ra", true, true},
  };

  // A separate handle onto the internal-nodes file, used purely to evict
  // its OS page-cache pages between rounds (the eviction is per file, not
  // per descriptor) — without it the "cold" scan would be measuring
  // page-cache memcpy, not the disk-resident regime readahead targets.
  auto internal_file = storage::BlockFile::Open(
      env.dir->path() + "/" + suffix::PackedTreeFiles::kInternal, block_size);
  OASIS_CHECK(internal_file.ok()) << internal_file.status().ToString();

  std::printf("sibling scan: %llu internal records in %llu blocks, pool %llu "
              "frames, readahead %u blocks/miss, %d cold rounds each\n\n",
              static_cast<unsigned long long>(env.tree->num_internal()),
              static_cast<unsigned long long>(internal_blocks),
              static_cast<unsigned long long>(pool_frames), k, rounds);
  std::printf("%-10s %14s %10s %12s %12s %12s\n", "config", "scans/s",
              "speedup", "ra issued", "ra used", "ra wasted");

  std::vector<std::pair<std::string, double>> metrics;
  double scans_per_sec[4] = {0, 0, 0, 0};
  uint64_t checksums[4] = {0, 0, 0, 0};
  storage::ReadaheadStats final_ra;
  for (size_t c = 0; c < 4; ++c) {
    const ScanConfig& config = configs[c];
    storage::BufferPool pool(pool_frames * block_size, block_size);
    auto tree = suffix::PackedSuffixTree::Open(env.dir->path(), &pool);
    OASIS_CHECK(tree.ok()) << tree.status().ToString();
    // Kernel readahead off for every config: the pool (plus, in the
    // readahead configs, storage::Readahead) is the only prefetcher, so
    // "cold" means cold and the comparison isolates *our* speculation.
    OASIS_CHECK((*tree)->AdviseRandomAccess().ok());
    std::unique_ptr<storage::Readahead> readahead;
    if (config.readahead) {
      storage::Readahead::Options options;
      options.blocks = k;
      options.threads = 2;  // keep speculation ahead of the demand scan
      readahead = std::make_unique<storage::Readahead>(&pool, options);
    }
    storage::FetchMemo memo;
    storage::FetchMemo* memo_ptr = config.memo ? &memo : nullptr;

    // Untimed first round settles the readahead worker and validates the
    // checksum baseline.
    checksums[c] = ScanOnce(**tree, pool, readahead.get(), memo_ptr);
    util::Timer timer;
    for (int r = 0; r < rounds; ++r) {
      pool.Clear();
      OASIS_CHECK(internal_file->DropOsCache().ok());
      uint64_t check = ScanOnce(**tree, pool, readahead.get(), memo_ptr);
      OASIS_CHECK_EQ(check, checksums[c]);
    }
    scans_per_sec[c] = rounds / timer.ElapsedSeconds();

    const storage::ReadaheadStats ra = pool.readahead_stats();
    if (config.readahead && config.memo) final_ra = ra;
    std::printf("%-10s %14.2f %9.2fx %12llu %12llu %12llu\n", config.name,
                scans_per_sec[c], scans_per_sec[c] / scans_per_sec[0],
                static_cast<unsigned long long>(ra.issued),
                static_cast<unsigned long long>(ra.used),
                static_cast<unsigned long long>(ra.wasted));
    metrics.emplace_back(std::string("scan.speedup.") + config.name,
                         scans_per_sec[c] / scans_per_sec[0]);
  }
  OASIS_CHECK_EQ(checksums[0], checksums[1]);
  OASIS_CHECK_EQ(checksums[0], checksums[2]);
  OASIS_CHECK_EQ(checksums[0], checksums[3]);

  const double combined = scans_per_sec[3] / scans_per_sec[0];
  const double ra_gain = scans_per_sec[3] / scans_per_sec[1];
  const double used_ratio =
      final_ra.issued == 0
          ? 0.0
          : static_cast<double>(final_ra.used) / final_ra.issued;
  metrics.emplace_back("prefetch.used_ratio", used_ratio);
  metrics.emplace_back("prefetch.waste_ratio", final_ra.waste_ratio());

  // End-to-end queries, cold pool per engine config (recorded, not gated).
  std::printf("\nqueries end-to-end (pool %llu frames, cold start):\n",
              static_cast<unsigned long long>(pool_frames));
  const struct {
    const char* name;
    bool memo;
    uint32_t readahead;
  } query_configs[] = {
      {"plain", false, 0}, {"memo", true, 0}, {"memo+ra", true, k}};
  double qps[3] = {0, 0, 0};
  uint64_t results[3] = {0, 0, 0};
  for (int qc = 0; qc < 3; ++qc) {
    api::EngineOptions options;
    options.matrix = env.matrix;
    options.io_mode = api::IoMode::kPooled;
    options.pool_bytes = pool_frames * block_size;
    options.fetch_memo = query_configs[qc].memo;
    options.readahead_blocks = query_configs[qc].readahead;
    auto engine = api::Engine::Open(env.dir->path(), options);
    OASIS_CHECK(engine.ok()) << engine.status().ToString();
    OASIS_CHECK((*engine)->tree().AdviseRandomAccess().ok());
    OASIS_CHECK(internal_file->DropOsCache().ok());
    util::Timer timer;
    for (const workload::MotifQuery& query : env.queries) {
      auto out = (*engine)->SearchAll(
          api::SearchRequest(query.symbols).EValue(1000.0));
      OASIS_CHECK(out.ok()) << out.status().ToString();
      results[qc] += out->results.size();
    }
    qps[qc] = env.queries.size() / timer.ElapsedSeconds();
    std::printf("  %-8s %8.1f q/s (%.2fx)\n", query_configs[qc].name,
                qps[qc], qps[qc] / qps[0]);
  }
  OASIS_CHECK_EQ(results[0], results[1]);
  OASIS_CHECK_EQ(results[0], results[2])
      << "readahead+memo must not change the result set";
  std::printf("  %llu results in every config\n",
              static_cast<unsigned long long>(results[0]));
  metrics.emplace_back("query.speedup.memo", qps[1] / qps[0]);
  metrics.emplace_back("query.speedup.memo_ra", qps[2] / qps[0]);

  const bool pass = combined >= kRequiredCombinedSpeedup &&
                    ra_gain >= kRequiredReadaheadGain &&
                    final_ra.waste_ratio() <= kMaxWasteRatio;
  std::printf("\nshape check: memo+ra >= %.2fx baseline (%.2fx), "
              "readahead adds >= %.2fx over memo (%.2fx), waste ratio "
              "<= %.2f (%.3f): %s\n",
              kRequiredCombinedSpeedup, combined, kRequiredReadaheadGain,
              ra_gain, kMaxWasteRatio, final_ra.waste_ratio(),
              pass ? "PASS" : "FAIL");
  WriteBenchJson("readahead", metrics);
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
