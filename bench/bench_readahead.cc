// Speculative sibling-run readahead + per-cursor fetch memo on a
// cold-cache sibling scan (pooled mode).
//
// The workload walks every internal-node record in level-first order —
// exactly the sibling-run access pattern the packed layout was designed
// for — through a pool holding only a fraction of the internal segment,
// cleared before every round so each round runs cold. Four configurations
// replay the identical trace:
//
//   baseline     every record read is a full pool Fetch; every block a
//                demand miss paid inline
//   memo         a storage::FetchMemo turns the 127 same-block record
//                reads after the first into pool-free pointer reads
//   readahead    a storage::Readahead worker prefetches the next K blocks
//                of the run on every miss, so the demand thread finds
//                loaded frames instead of paying the pread
//   memo+ra      both — the shipping configuration of a pooled engine
//                (EngineOptions::fetch_memo + readahead_blocks)
//
// All four must produce the identical checksum (result parity; the
// byte-for-byte engine-level parity is proven by tests/readahead_test.cc).
// The shape gates, enforced through the exit code and CI:
//
//   memo+ra >= kRequiredCombinedSpeedup x baseline
//   memo+ra >= kRequiredReadaheadGain x memo alone (the readahead win in
//              the shipping configuration, isolated from the memo's)
//   prefetch waste ratio <= kMaxWasteRatio (speculation stays bounded)
//
// A second, mixed-workload section compares the adaptive window
// controller (storage::AdaptiveReadahead) against the fixed-K window on
// alternating phases: a sequential phase (full level-first block sweep —
// the workload fixed-K is tuned for) and a scattered phase (random
// 2-block mini-runs — the workload where a fixed window wastes a full K
// blocks per accidental trigger). Its gates, also through the exit code:
//
//   adaptive sequential throughput >= kMinAdaptiveSeqRatio x fixed-K
//   adaptive scattered waste ratio <= kMaxAdaptiveWasteFraction x fixed-K
//       (waste ratio here = wasted speculative blocks per demand fetch,
//       the speculation's I/O overhead on the work actually done; the
//       wasted/issued quotient is printed too, but a controller that
//       stops speculating drives wasted *volume* to zero while the
//       quotient of the few remaining probes stays high — volume per
//       fetch is the number that tracks what the disk feels)
//   identical checksum across {off, fixed, adaptive} (result parity)
//
// An end-to-end query table (same A* workload as the figure benches, cold
// pool per query batch) is printed and recorded in the JSON but not gated:
// query wall-clock on shared CI runners is too noisy to gate, and the
// search's access pattern is only partly sequential.
//
// Scaling knobs: the usual bench_common environment variables, plus
// OASIS_READAHEAD_BLOCKS (default 8) for the speculation window.

#include <vector>

#include "bench_common.h"
#include "storage/readahead.h"
#include "suffix/packed_tree.h"

namespace oasis {
namespace bench {
namespace {

constexpr double kRequiredCombinedSpeedup = 1.25;
constexpr double kRequiredReadaheadGain = 1.03;
constexpr double kMaxWasteRatio = 0.25;

// Mixed-phase gates: the controller must approach fixed-K where fixed-K
// is right (sequential) and shed most of its waste where it is wrong
// (scattered).
constexpr double kMinAdaptiveSeqRatio = 0.90;
constexpr double kMaxAdaptiveWasteFraction = 0.50;
// The fixed window of the mixed comparison, and the adaptive config's
// initial window (same starting point; the controller may grow to 2x).
constexpr uint32_t kMixedWindow = 16;

struct ScanConfig {
  const char* name;
  bool memo;
  bool readahead;
};

/// One cold sibling scan: read every internal record in level-first
/// order. Returns the checksum (parity across configs). The caller clears
/// the pool *and* the OS page cache between rounds.
uint64_t ScanOnce(const suffix::PackedSuffixTree& tree,
                  storage::BufferPool& pool, storage::Readahead* readahead,
                  storage::FetchMemo* memo) {
  const uint32_t n = static_cast<uint32_t>(tree.num_internal());
  uint64_t checksum = 0;
  for (uint32_t idx = 0; idx < n; ++idx) {
    auto node = tree.ReadInternal(idx, memo);
    OASIS_CHECK(node.ok()) << node.status().ToString();
    checksum += node->depth() + node->sym_offset;
  }
  // Release memo pins and let speculation finish before the caller clears
  // the pool for the next cold round (Clear requires full quiescence).
  if (memo != nullptr) memo->Clear();
  if (readahead != nullptr) readahead->Drain();
  return checksum;
}

/// One configuration's pass over the mixed workload.
struct MixedOutcome {
  double seq_scans_per_sec = 0;      ///< sequential-phase throughput
  double waste_per_fetch = 0;        ///< scattered: wasted blocks / fetch
  double waste_quotient = 0;         ///< scattered: wasted / issued
  uint64_t scatter_issued = 0;
  uint64_t scatter_wasted = 0;
  uint64_t seq_requests = 0;
  uint64_t scatter_requests = 0;
  uint64_t checksum = 0;             ///< parity across configurations
  uint32_t final_window = 0;         ///< adaptive: window after the last
                                     ///  scattered phase (0 = collapsed)
};

/// Runs `rounds`+1 alternating sequential/scattered rounds (round 0 is an
/// untimed warmup) against a fresh pool; every round is cold (pool
/// cleared, OS cache dropped). The three configurations replay the
/// identical block trace — same seeds — so their checksums must agree.
MixedOutcome RunMixedPhases(const BenchEnv& env,
                            storage::BlockFile& internal_file,
                            uint64_t pool_frames, uint32_t block_size,
                            int rounds, bool enable_readahead,
                            bool adaptive) {
  MixedOutcome out;
  storage::BufferPool pool(pool_frames * block_size, block_size);
  auto tree = suffix::PackedSuffixTree::Open(env.dir->path(), &pool);
  OASIS_CHECK(tree.ok()) << tree.status().ToString();
  OASIS_CHECK((*tree)->AdviseRandomAccess().ok());
  const storage::SegmentId seg = (*tree)->internal_segment();
  const uint64_t blocks = internal_file.num_blocks();
  OASIS_CHECK_GT(blocks, 4u);

  std::unique_ptr<storage::Readahead> readahead;
  if (enable_readahead) {
    storage::Readahead::Options options;
    options.blocks = kMixedWindow;
    options.threads = 2;
    options.adaptive = adaptive;
    // Headroom above the fixed comparison point: a sequential phase that
    // keeps landing may earn a deeper window than K, which funds the
    // re-ramp after every scattered collapse.
    options.adaptive_options.max_blocks = 2 * kMixedWindow;
    readahead = std::make_unique<storage::Readahead>(&pool, options);
  }

  auto fetch = [&](uint64_t b) {
    auto page = pool.Fetch(seg, static_cast<storage::BlockId>(b));
    OASIS_CHECK(page.ok()) << page.status().ToString();
    out.checksum = out.checksum * 31 + page->data()[0] + b;
  };
  auto drain = [&] {
    if (readahead != nullptr) readahead->Drain();
  };

  // Identical across configurations: the scattered trace must replay
  // exactly for checksum parity.
  util::Random rng(4242);
  const uint64_t mini_runs = blocks;  // scattered fetches = 2x blocks
  double seq_seconds = 0;
  for (int r = 0; r <= rounds; ++r) {
    drain();
    pool.Clear();
    OASIS_CHECK(internal_file.DropOsCache().ok());

    // Sequential phase: the full level-first sweep.
    const uint64_t seq_requests_before = pool.stats(seg).requests;
    util::Timer seq_timer;
    for (uint64_t b = 0; b < blocks; ++b) fetch(b);
    drain();
    if (r > 0) {
      seq_seconds += seq_timer.ElapsedSeconds();
      out.seq_requests += pool.stats(seg).requests - seq_requests_before;
    }

    // Scattered phase: random 2-block mini-runs. The second block of
    // every mini-run continues a detected run, so each one triggers
    // speculation — fixed-K pays K blocks for it, the controller learns
    // to stop. The cache drop matters twice over: the sequential sweep
    // above just heated the OS page cache, and a warm scattered phase
    // finishes in milliseconds — too fast for the background workers to
    // run at all, let alone for outcome feedback to mean anything. Cold,
    // the phase is disk-bound: the regime speculation actually operates
    // in, where its waste is real I/O.
    drain();
    OASIS_CHECK(internal_file.DropOsCache().ok());
    const storage::ReadaheadStats before = pool.readahead_stats();
    const uint64_t scatter_requests_before = pool.stats(seg).requests;
    for (uint64_t i = 0; i < mini_runs; ++i) {
      const uint64_t start = rng.Uniform(blocks - 1);
      fetch(start);
      fetch(start + 1);
    }
    drain();
    if (r > 0) {
      const storage::ReadaheadStats after = pool.readahead_stats();
      out.scatter_issued += after.issued - before.issued;
      out.scatter_wasted += after.wasted - before.wasted;
      out.scatter_requests +=
          pool.stats(seg).requests - scatter_requests_before;
    }
  }
  out.seq_scans_per_sec = rounds / seq_seconds;
  out.waste_per_fetch =
      out.scatter_requests == 0
          ? 0.0
          : static_cast<double>(out.scatter_wasted) / out.scatter_requests;
  out.waste_quotient =
      out.scatter_issued == 0
          ? 0.0
          : static_cast<double>(out.scatter_wasted) / out.scatter_issued;
  if (readahead != nullptr && readahead->adaptive()) {
    out.final_window = readahead->window(seg);
  }
  drain();
  return out;
}

int Run() {
  BenchEnv env = MakeProteinEnv();
  PrintHeader("Sibling-run readahead + fetch memo, cold pooled scans", env);

  const uint32_t k = static_cast<uint32_t>(
      util::EnvInt64("OASIS_READAHEAD_BLOCKS", 8));
  const int rounds = static_cast<int>(util::EnvInt64("OASIS_SCAN_ROUNDS", 5));

  // Pool sized to an eighth of the internal segment (>= 16 frames): big
  // enough that prefetched blocks survive until their demand read, small
  // enough that every round stays miss-dominated — the cold, disk-resident
  // regime readahead exists for.
  const uint32_t block_size = storage::kDefaultBlockSize;
  const uint64_t internal_blocks =
      (env.tree->num_internal() * sizeof(suffix::PackedInternalNode) +
       block_size - 1) / block_size;
  const uint64_t pool_frames = std::max<uint64_t>(16, internal_blocks / 8);

  const ScanConfig configs[] = {
      {"baseline", false, false},
      {"memo", true, false},
      {"readahead", false, true},
      {"memo+ra", true, true},
  };

  // A separate handle onto the internal-nodes file, used purely to evict
  // its OS page-cache pages between rounds (the eviction is per file, not
  // per descriptor) — without it the "cold" scan would be measuring
  // page-cache memcpy, not the disk-resident regime readahead targets.
  auto internal_file = storage::BlockFile::Open(
      env.dir->path() + "/" + suffix::PackedTreeFiles::kInternal, block_size);
  OASIS_CHECK(internal_file.ok()) << internal_file.status().ToString();

  std::printf("sibling scan: %llu internal records in %llu blocks, pool %llu "
              "frames, readahead %u blocks/miss, %d cold rounds each\n\n",
              static_cast<unsigned long long>(env.tree->num_internal()),
              static_cast<unsigned long long>(internal_blocks),
              static_cast<unsigned long long>(pool_frames), k, rounds);
  std::printf("%-10s %14s %10s %12s %12s %12s\n", "config", "scans/s",
              "speedup", "ra issued", "ra used", "ra wasted");

  std::vector<std::pair<std::string, double>> metrics;
  double scans_per_sec[4] = {0, 0, 0, 0};
  uint64_t checksums[4] = {0, 0, 0, 0};
  storage::ReadaheadStats final_ra;
  for (size_t c = 0; c < 4; ++c) {
    const ScanConfig& config = configs[c];
    storage::BufferPool pool(pool_frames * block_size, block_size);
    auto tree = suffix::PackedSuffixTree::Open(env.dir->path(), &pool);
    OASIS_CHECK(tree.ok()) << tree.status().ToString();
    // Kernel readahead off for every config: the pool (plus, in the
    // readahead configs, storage::Readahead) is the only prefetcher, so
    // "cold" means cold and the comparison isolates *our* speculation.
    OASIS_CHECK((*tree)->AdviseRandomAccess().ok());
    std::unique_ptr<storage::Readahead> readahead;
    if (config.readahead) {
      storage::Readahead::Options options;
      options.blocks = k;
      options.threads = 2;  // keep speculation ahead of the demand scan
      readahead = std::make_unique<storage::Readahead>(&pool, options);
    }
    storage::FetchMemo memo;
    storage::FetchMemo* memo_ptr = config.memo ? &memo : nullptr;

    // Untimed first round settles the readahead worker and validates the
    // checksum baseline.
    checksums[c] = ScanOnce(**tree, pool, readahead.get(), memo_ptr);
    util::Timer timer;
    for (int r = 0; r < rounds; ++r) {
      pool.Clear();
      OASIS_CHECK(internal_file->DropOsCache().ok());
      uint64_t check = ScanOnce(**tree, pool, readahead.get(), memo_ptr);
      OASIS_CHECK_EQ(check, checksums[c]);
    }
    scans_per_sec[c] = rounds / timer.ElapsedSeconds();

    const storage::ReadaheadStats ra = pool.readahead_stats();
    if (config.readahead && config.memo) final_ra = ra;
    std::printf("%-10s %14.2f %9.2fx %12llu %12llu %12llu\n", config.name,
                scans_per_sec[c], scans_per_sec[c] / scans_per_sec[0],
                static_cast<unsigned long long>(ra.issued),
                static_cast<unsigned long long>(ra.used),
                static_cast<unsigned long long>(ra.wasted));
    metrics.emplace_back(std::string("scan.speedup.") + config.name,
                         scans_per_sec[c] / scans_per_sec[0]);
  }
  OASIS_CHECK_EQ(checksums[0], checksums[1]);
  OASIS_CHECK_EQ(checksums[0], checksums[2]);
  OASIS_CHECK_EQ(checksums[0], checksums[3]);

  const double combined = scans_per_sec[3] / scans_per_sec[0];
  const double ra_gain = scans_per_sec[3] / scans_per_sec[1];
  const double used_ratio =
      final_ra.issued == 0
          ? 0.0
          : static_cast<double>(final_ra.used) / final_ra.issued;
  metrics.emplace_back("prefetch.used_ratio", used_ratio);
  metrics.emplace_back("prefetch.waste_ratio", final_ra.waste_ratio());

  // End-to-end queries, cold pool per engine config (recorded, not gated).
  std::printf("\nqueries end-to-end (pool %llu frames, cold start):\n",
              static_cast<unsigned long long>(pool_frames));
  const struct {
    const char* name;
    bool memo;
    uint32_t readahead;
  } query_configs[] = {
      {"plain", false, 0}, {"memo", true, 0}, {"memo+ra", true, k}};
  double qps[3] = {0, 0, 0};
  uint64_t results[3] = {0, 0, 0};
  for (int qc = 0; qc < 3; ++qc) {
    api::EngineOptions options;
    options.matrix = env.matrix;
    options.io_mode = api::IoMode::kPooled;
    options.pool_bytes = pool_frames * block_size;
    options.fetch_memo = query_configs[qc].memo;
    options.readahead_blocks = query_configs[qc].readahead;
    // Fixed-K, like every other configuration in this PR-4 section: the
    // recorded query.speedup metrics keep measuring the same mechanism
    // across runs. The adaptive controller is measured (and gated) by
    // the mixed-phase section below.
    options.readahead_adaptive = false;
    auto engine = api::Engine::Open(env.dir->path(), options);
    OASIS_CHECK(engine.ok()) << engine.status().ToString();
    OASIS_CHECK((*engine)->tree().AdviseRandomAccess().ok());
    OASIS_CHECK(internal_file->DropOsCache().ok());
    util::Timer timer;
    for (const workload::MotifQuery& query : env.queries) {
      auto out = (*engine)->SearchAll(
          api::SearchRequest(query.symbols).EValue(1000.0));
      OASIS_CHECK(out.ok()) << out.status().ToString();
      results[qc] += out->results.size();
    }
    qps[qc] = env.queries.size() / timer.ElapsedSeconds();
    std::printf("  %-8s %8.1f q/s (%.2fx)\n", query_configs[qc].name,
                qps[qc], qps[qc] / qps[0]);
  }
  OASIS_CHECK_EQ(results[0], results[1]);
  OASIS_CHECK_EQ(results[0], results[2])
      << "readahead+memo must not change the result set";
  std::printf("  %llu results in every config\n",
              static_cast<unsigned long long>(results[0]));
  metrics.emplace_back("query.speedup.memo", qps[1] / qps[0]);
  metrics.emplace_back("query.speedup.memo_ra", qps[2] / qps[0]);

  // --- Mixed sequential/scattered phases: adaptive vs fixed window ----------
  const int mixed_rounds =
      static_cast<int>(util::EnvInt64("OASIS_MIXED_ROUNDS", 3));
  std::printf("\nmixed phases (seq sweep + scattered 2-block mini-runs, "
              "%d cold rounds, fixed K=%u vs adaptive [0, %u] from %u):\n",
              mixed_rounds, kMixedWindow, 2 * kMixedWindow, kMixedWindow);
  const MixedOutcome off = RunMixedPhases(
      env, *internal_file, pool_frames, block_size, mixed_rounds,
      /*enable_readahead=*/false, /*adaptive=*/false);
  const MixedOutcome fixed = RunMixedPhases(
      env, *internal_file, pool_frames, block_size, mixed_rounds,
      /*enable_readahead=*/true, /*adaptive=*/false);
  const MixedOutcome adaptive = RunMixedPhases(
      env, *internal_file, pool_frames, block_size, mixed_rounds,
      /*enable_readahead=*/true, /*adaptive=*/true);
  OASIS_CHECK_EQ(off.checksum, fixed.checksum);
  OASIS_CHECK_EQ(off.checksum, adaptive.checksum)
      << "the adaptive window must not change what gets read";

  std::printf("  %-10s %12s %18s %14s %12s\n", "config", "seq scans/s",
              "scatter waste/fetch", "wasted/issued", "final window");
  std::printf("  %-10s %12.2f %18.3f %14.3f %12s\n", "off",
              off.seq_scans_per_sec, 0.0, 0.0, "-");
  std::printf("  %-10s %12.2f %18.3f %14.3f %12u\n", "fixed",
              fixed.seq_scans_per_sec, fixed.waste_per_fetch,
              fixed.waste_quotient, kMixedWindow);
  std::printf("  %-10s %12.2f %18.3f %14.3f %12u\n", "adaptive",
              adaptive.seq_scans_per_sec, adaptive.waste_per_fetch,
              adaptive.waste_quotient, adaptive.final_window);

  const double seq_ratio =
      adaptive.seq_scans_per_sec / fixed.seq_scans_per_sec;
  // Guard the division: a fixed-K run that somehow wasted nothing would
  // make the fraction meaningless — the gate below fails on the absolute
  // comparison instead.
  const double waste_fraction =
      fixed.waste_per_fetch > 0
          ? adaptive.waste_per_fetch / fixed.waste_per_fetch
          : 1.0;
  // Capped at parity for the baseline gate: the claim worth protecting is
  // "adaptive approaches fixed-K on sequential work" — beating fixed-K
  // (the controller may grow past K) is gravy, and leaving it uncapped
  // would make the recorded baseline a wall-clock lottery ticket that a
  // noisy runner then regresses against. The exit-code gate above uses
  // the raw ratio.
  metrics.emplace_back("mixed.seq_vs_fixed", std::min(seq_ratio, 1.0));
  metrics.emplace_back("mixed.scatter_waste_cut", 1.0 - waste_fraction);
  metrics.emplace_back("mixed.waste_per_fetch.fixed", fixed.waste_per_fetch);
  metrics.emplace_back("mixed.waste_per_fetch.adaptive",
                       adaptive.waste_per_fetch);

  // Raw event totals behind the gated ratios (the gate's vacuous-pass
  // guard: ci/bench_gate.py fails a gated ratio whose denominator count
  // sits below the baseline's sanity floor).
  std::vector<std::pair<std::string, uint64_t>> json_counts;
  json_counts.emplace_back("prefetch.issued", final_ra.issued);
  json_counts.emplace_back("mixed.seq.requests", adaptive.seq_requests);
  json_counts.emplace_back("mixed.scatter.requests",
                           adaptive.scatter_requests);
  json_counts.emplace_back("mixed.scatter.issued.fixed",
                           fixed.scatter_issued);
  json_counts.emplace_back("mixed.scatter.issued.adaptive",
                           adaptive.scatter_issued);

  const bool pass_fixed = combined >= kRequiredCombinedSpeedup &&
                          ra_gain >= kRequiredReadaheadGain &&
                          final_ra.waste_ratio() <= kMaxWasteRatio;
  const bool pass_mixed =
      seq_ratio >= kMinAdaptiveSeqRatio &&
      adaptive.waste_per_fetch <=
          kMaxAdaptiveWasteFraction * fixed.waste_per_fetch;
  std::printf("\nshape check: memo+ra >= %.2fx baseline (%.2fx), "
              "readahead adds >= %.2fx over memo (%.2fx), waste ratio "
              "<= %.2f (%.3f): %s\n",
              kRequiredCombinedSpeedup, combined, kRequiredReadaheadGain,
              ra_gain, kMaxWasteRatio, final_ra.waste_ratio(),
              pass_fixed ? "PASS" : "FAIL");
  std::printf("adaptive check: seq >= %.2fx fixed (%.2fx), scattered "
              "waste/fetch <= %.2fx fixed (%.3f vs %.3f): %s\n",
              kMinAdaptiveSeqRatio, seq_ratio, kMaxAdaptiveWasteFraction,
              adaptive.waste_per_fetch, fixed.waste_per_fetch,
              pass_mixed ? "PASS" : "FAIL");
  WriteBenchJson("readahead", metrics, json_counts);
  return pass_fixed && pass_mixed ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
