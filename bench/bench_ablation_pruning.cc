// Pruning ablation (DESIGN.md design-choice bench): how much work do the
// three §3.2 pruning rules individually save? Rule 1 (non-positive cells)
// is required for correctness and cannot be disabled; rules 2 ("existing
// alignment as good") and 3 ("threshold failure") are toggled here.
//
// Results are identical across configurations (verified per query) — only
// the explored search space changes.

#include "bench_common.h"

namespace oasis {
namespace bench {
namespace {

struct Config {
  const char* name;
  bool disable_rule2;
  bool disable_rule3;
};

int Run() {
  BenchEnv env = MakeProteinEnv();
  PrintHeader("Pruning ablation: columns expanded per disabled rule, E=1000",
              env);

  core::OasisSearch search(env.tree, env.matrix);
  const Config configs[] = {
      {"all rules (paper)", false, false},
      {"no rule 2", true, false},
      {"no rule 3", false, true},
      {"no rules 2+3", true, true},
  };

  // A moderate E so rule 3 has bite but the no-rule-3 runs stay tractable.
  std::printf("%-20s %16s %14s %14s\n", "configuration", "columns", "nodes",
              "mean time (s)");
  std::vector<size_t> baseline_counts;
  const size_t num_queries = std::min<size_t>(env.queries.size(), 15);
  for (const Config& config : configs) {
    uint64_t columns = 0, nodes = 0;
    double seconds = 0;
    for (size_t qi = 0; qi < num_queries; ++qi) {
      const auto& q = env.queries[qi].symbols;
      core::OasisOptions options;
      options.min_score = score::MinScoreForEValue(env.karlin, 1000.0,
                                                   q.size(), env.db_residues());
      options.disable_rule2_pruning = config.disable_rule2;
      options.disable_rule3_pruning = config.disable_rule3;
      core::OasisStats stats;
      util::Timer timer;
      auto results = search.SearchAll(q, options, &stats);
      seconds += timer.ElapsedSeconds();
      OASIS_CHECK(results.ok());
      columns += stats.columns_expanded;
      nodes += stats.nodes_expanded;
      // Exactness must hold in every configuration.
      if (config.disable_rule2 == false && config.disable_rule3 == false) {
        baseline_counts.push_back(results->size());
      } else {
        OASIS_CHECK_EQ(results->size(), baseline_counts[qi])
            << "ablation changed the result set";
      }
    }
    std::printf("%-20s %16llu %14llu %14.4f\n", config.name,
                static_cast<unsigned long long>(columns),
                static_cast<unsigned long long>(nodes),
                seconds / static_cast<double>(num_queries));
  }
  std::printf("\nshape check: every disabled rule increases explored columns; "
              "the result sets never change\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
