// Layout ablation (DESIGN.md design-choice bench): the paper stores
// internal suffix-tree nodes level-first so siblings are physically
// adjacent (§3.4). This bench compares the buffer-pool hit ratio of that
// layout against a pessimized layout where internal records are scattered
// pseudo-randomly across the file, at a small pool size where layout
// matters.

#include "bench_common.h"
#include "suffix/packed_builder.h"

namespace oasis {
namespace bench {
namespace {

int Run() {
  BenchEnv env = MakeProteinEnv();
  PrintHeader("Layout ablation: level-first vs scattered internal nodes", env);

  // Build the scattered-layout twin index.
  util::TempDir scattered_dir("scatter");
  {
    auto tree = suffix::SuffixTree::BuildUkkonen(*env.db);
    OASIS_CHECK(tree.ok());
    suffix::PackOptions options;
    options.scatter_internal_nodes = true;
    options.scatter_seed = 7;
    OASIS_CHECK(suffix::PackSuffixTree(*tree, scattered_dir.path(), options).ok());
  }

  const uint64_t index_bytes = env.tree->index_bytes();
  const size_t num_queries = std::min<size_t>(env.queries.size(), 25);
  std::printf("%-22s %14s %14s %14s\n", "layout @ pool/index=1/8",
              "internal hit", "overall hit", "mean time (s)");

  for (int variant = 0; variant < 2; ++variant) {
    const std::string& dir =
        variant == 0 ? env.dir->path() : scattered_dir.path();
    storage::BufferPool pool(index_bytes / 8);
    auto tree = suffix::PackedSuffixTree::Open(dir, &pool);
    OASIS_CHECK(tree.ok());
    core::OasisSearch search(tree->get(), env.matrix);

    util::Timer timer;
    for (size_t qi = 0; qi < num_queries; ++qi) {
      const auto& q = env.queries[qi].symbols;
      core::OasisOptions options;
      options.min_score = score::MinScoreForEValue(
          env.karlin, 20000.0, q.size(), env.db_residues());
      auto results = search.SearchAll(q, options);
      OASIS_CHECK(results.ok());
    }
    double mean = timer.ElapsedSeconds() / static_cast<double>(num_queries);
    std::printf("%-22s %14.3f %14.3f %14.4f\n",
                variant == 0 ? "level-first (paper)" : "scattered",
                pool.stats((*tree)->internal_segment()).hit_ratio(),
                pool.TotalStats().hit_ratio(), mean);
  }
  std::printf("\nshape check: the level-first layout keeps a higher internal-"
              "node hit ratio (the paper's §3.4 rationale)\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
