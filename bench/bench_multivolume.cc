// Multi-volume builds and fan-out search vs the monolithic baseline.
//
// Two acceptance bars for the volume-set layer:
//
//   1. Build parallelism (exit-code floor): slicing the database into 4
//      volumes and building them on 4 worker threads must finish in at
//      most half the wall-clock of the single-thread monolithic build
//      (speedup >= 2.0) on a machine with >= 4 hardware threads. The
//      partitioned builder does the same total work either way, so the
//      speedup is pure parallelism; machines with fewer threads get a
//      proportionally relaxed floor (>= 1.0 at 2-3 threads) and a
//      single-core machine only has to avoid a catastrophic slowdown —
//      there is nothing to parallelize over.
//
//   2. Fan-out search throughput (gated ratio): draining the same query
//      workload through the 4-volume engine vs the monolithic one. The
//      k-way merge and per-volume cursor bookkeeping must stay cheap:
//      the ratio (fanout QPS / monolithic QPS) is a same-machine ratio,
//      so runner speed cancels out, and it is gated against
//      ci/bench_baseline.json with the query count as its vacuous-pass
//      denominator (>= 100 queries, regardless of OASIS_NUM_QUERIES).
//
// The bench also asserts result parity outright: every query must return
// the same number of hits with the same score sequence from both
// engines — a fan-out that got faster by dropping hits is a failure, not
// a speedup.
//
// Scaling knobs: the usual bench_common environment variables.

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace oasis {
namespace bench {
namespace {

constexpr uint32_t kVolumes = 4;
constexpr uint32_t kBuildRounds = 3;   // best-of to absorb fs jitter
constexpr uint32_t kMinQueries = 100;  // the gate's denominator floor

/// The build-speedup floor for this machine; 0 disables the check.
double RequiredBuildSpeedup(uint32_t hw_threads) {
  if (hw_threads >= kVolumes) return 2.0;
  if (hw_threads >= 2) return 1.0;
  return 0.0;
}

seq::SequenceDatabase MakeDb() {
  workload::ProteinDatabaseOptions options;
  options.target_residues =
      static_cast<uint64_t>(util::EnvInt64("OASIS_DB_RESIDUES", 1000000));
  options.seed = static_cast<uint64_t>(util::EnvInt64("OASIS_SEED", 42));
  auto db = workload::GenerateProteinDatabase(options);
  OASIS_CHECK(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

/// Best-of-kBuildRounds wall-clock of CreateFromDatabase under `options`.
double TimeBuild(const api::EngineOptions& options) {
  double best = 0;
  for (uint32_t round = 0; round < kBuildRounds; ++round) {
    util::TempDir dir("bench_mv_build");
    seq::SequenceDatabase db = MakeDb();
    util::Timer timer;
    auto engine =
        api::Engine::CreateFromDatabase(std::move(db), dir.path(), options);
    const double elapsed = timer.ElapsedSeconds();
    OASIS_CHECK(engine.ok()) << engine.status().ToString();
    if (round == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

/// Drains every request sequentially; returns (total hits, score checksum,
/// QPS).
struct DrainOutcome {
  uint64_t hits = 0;
  uint64_t score_sum = 0;
  double qps = 0;
};

DrainOutcome DrainAll(const api::Engine& engine,
                      const std::vector<api::SearchRequest>& requests) {
  DrainOutcome out;
  util::Timer timer;
  for (const api::SearchRequest& request : requests) {
    auto batch = engine.SearchAll(request);
    OASIS_CHECK(batch.ok()) << batch.status().ToString();
    out.hits += batch->results.size();
    for (const core::OasisResult& r : batch->results) {
      out.score_sum += static_cast<uint64_t>(r.score);
    }
  }
  out.qps = static_cast<double>(requests.size()) / timer.ElapsedSeconds();
  return out;
}

int Run() {
  const uint32_t hw_threads = std::thread::hardware_concurrency();
  const uint64_t db_residues =
      static_cast<uint64_t>(util::EnvInt64("OASIS_DB_RESIDUES", 1000000));

  api::EngineOptions mono_options;
  mono_options.matrix = &score::SubstitutionMatrix::Pam30();
  mono_options.io_mode = api::IoMode::kPooled;
  mono_options.pool_bytes =
      static_cast<uint64_t>(util::EnvInt64("OASIS_POOL_MB", 64)) << 20;

  api::EngineOptions multi_options = mono_options;
  // Slice so the database lands in kVolumes roughly equal volumes.
  multi_options.volume_size_bytes =
      std::max<uint64_t>(1, (db_residues + kVolumes - 1) / kVolumes);
  multi_options.build_threads = kVolumes;

  std::printf("==================================================================\n");
  std::printf("multi-volume: %u-way parallel build + fan-out search vs "
              "monolithic\n", kVolumes);
  std::printf("database: %llu residues; hardware threads: %u\n",
              static_cast<unsigned long long>(db_residues), hw_threads);
  std::printf("==================================================================\n\n");

  // --- 1. Build parallelism ------------------------------------------------
  const double mono_build = TimeBuild(mono_options);
  const double multi_build = TimeBuild(multi_options);
  const double build_speedup = multi_build > 0 ? mono_build / multi_build : 0;
  std::printf("build        monolithic %.3fs   %u volumes / %u threads %.3fs"
              "   speedup %.2fx\n\n",
              mono_build, kVolumes, kVolumes, multi_build, build_speedup);

  // --- 2. Fan-out search ----------------------------------------------------
  util::TempDir mono_dir("bench_mv_mono");
  util::TempDir multi_dir("bench_mv_multi");
  auto mono = api::Engine::CreateFromDatabase(MakeDb(), mono_dir.path(),
                                              mono_options);
  OASIS_CHECK(mono.ok()) << mono.status().ToString();
  auto multi = api::Engine::CreateFromDatabase(MakeDb(), multi_dir.path(),
                                               multi_options);
  OASIS_CHECK(multi.ok()) << multi.status().ToString();
  const size_t num_volumes = (*multi)->num_volumes();
  OASIS_CHECK_GT(num_volumes, 1u) << "fan-out bench needs multiple volumes";

  workload::MotifQueryOptions q_options;
  // The gated ratio needs a non-vacuous denominator: at least kMinQueries
  // queries no matter how small the smoke configuration runs.
  q_options.num_queries = std::max<uint32_t>(
      kMinQueries,
      static_cast<uint32_t>(util::EnvInt64("OASIS_NUM_QUERIES", 50)));
  q_options.seed = static_cast<uint64_t>(util::EnvInt64("OASIS_SEED", 42));
  auto queries = workload::GenerateMotifQueries(
      *(*mono)->database(), (*mono)->matrix(), q_options);
  OASIS_CHECK(queries.ok()) << queries.status().ToString();
  std::vector<api::SearchRequest> requests;
  for (workload::MotifQuery& q : *queries) {
    requests.push_back(
        api::SearchRequest(std::move(q.symbols)).EValue(10.0));
  }

  // Warm both engines once (cold-pool noise is not what this measures).
  DrainAll(**mono, requests);
  DrainAll(**multi, requests);
  const DrainOutcome mono_out = DrainAll(**mono, requests);
  const DrainOutcome multi_out = DrainAll(**multi, requests);
  const double fanout_ratio =
      mono_out.qps > 0 ? multi_out.qps / mono_out.qps : 0;

  std::printf("search       queries %zu\n", requests.size());
  std::printf("             monolithic %8.1f q/s   %llu hits\n", mono_out.qps,
              static_cast<unsigned long long>(mono_out.hits));
  std::printf("             %zu volumes  %8.1f q/s   %llu hits\n", num_volumes,
              multi_out.qps, static_cast<unsigned long long>(multi_out.hits));
  std::printf("             fan-out ratio %.2fx\n\n", fanout_ratio);

  // Parity: the fan-out must return exactly the monolithic hit set.
  OASIS_CHECK_EQ(mono_out.hits, multi_out.hits)
      << "fan-out dropped or invented hits";
  OASIS_CHECK_EQ(mono_out.score_sum, multi_out.score_sum)
      << "fan-out changed hit scores";

  // ci/bench_gate.py prefixes every key with the bench name, so these
  // surface as multivolume.search.fanout_ratio etc. in BENCH_ci.json.
  WriteBenchJson("multivolume",
                 {{"build.speedup", build_speedup},
                  {"search.fanout_ratio", fanout_ratio},
                  {"search.qps.mono", mono_out.qps},
                  {"search.qps.fanout", multi_out.qps}},
                 {{"search.queries", requests.size()},
                  {"search.hits", mono_out.hits},
                  {"build.volumes", num_volumes}});

  const double floor = RequiredBuildSpeedup(hw_threads);
  if (floor == 0.0) {
    std::printf("build-speedup floor skipped: %u hardware thread(s) — "
                "nothing to parallelize over\n", hw_threads);
  } else if (build_speedup < floor) {
    std::fprintf(stderr,
                 "FAIL: parallel volume build speedup %.2fx is below the "
                 "%.1fx floor for %u hardware threads\n",
                 build_speedup, floor, hw_threads);
    return 1;
  } else {
    std::printf("build-speedup floor met: %.2fx >= %.1fx\n", build_speedup,
                floor);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
