// Scaling ablation (extension beyond the paper's figures): OASIS vs S-W
// query time and columns expanded as the database grows.
//
// Why this bench exists: the paper's headline ">=10x faster than S-W" is
// measured on 40M residues; a laptop-scale reproduction runs at a fraction
// of that. S-W's work grows linearly with database size while OASIS's
// explored frontier grows sub-linearly (the E-value-derived minScore rises
// with ln(n), pruning deeper). This bench shows that trend directly, which
// is the evidence that the paper's crossover holds at its original scale.

#include "align/smith_waterman.h"
#include "bench_common.h"

namespace oasis {
namespace bench {
namespace {

int Run() {
  std::printf("==================================================================\n");
  std::printf("Scaling ablation: OASIS vs S-W as the database grows, E=20000\n");
  std::printf("==================================================================\n");
  std::printf("%-12s %10s %12s %12s %10s %12s %10s\n", "residues", "minScore",
              "OASIS(s)", "S-W(s)", "speedup", "OASIS cols", "col%%");

  const uint64_t base =
      static_cast<uint64_t>(util::EnvInt64("OASIS_DB_RESIDUES", 1000000));
  const auto& matrix = score::SubstitutionMatrix::Pam30();
  auto karlin = score::ComputeKarlinParams(matrix);
  OASIS_CHECK(karlin.ok());

  for (uint64_t residues : {base / 8, base / 4, base / 2, base}) {
    workload::ProteinDatabaseOptions options;
    options.target_residues = residues;
    options.seed = static_cast<uint64_t>(util::EnvInt64("OASIS_SEED", 42));
    auto db = workload::GenerateProteinDatabase(options);
    OASIS_CHECK(db.ok());

    util::TempDir dir("scal");
    api::EngineOptions engine_options;
    engine_options.matrix = &matrix;
    engine_options.pool_bytes =
        static_cast<uint64_t>(util::EnvInt64("OASIS_POOL_MB", 64)) << 20;
    auto engine = api::Engine::BuildFromDatabase(std::move(db).value(),
                                                 dir.path(), engine_options);
    OASIS_CHECK(engine.ok());
    const seq::SequenceDatabase& resident = *(*engine)->database();

    workload::MotifQueryOptions q_options;
    q_options.num_queries = 10;
    q_options.min_length = 14;
    q_options.max_length = 18;
    q_options.seed = options.seed;
    auto queries = workload::GenerateMotifQueries(resident, matrix, q_options);
    OASIS_CHECK(queries.ok());

    double oasis_s = 0, sw_s = 0;
    uint64_t oasis_cols = 0, sw_cols = 0;
    score::ScoreT last_min_score = 0;
    for (const auto& q : *queries) {
      api::SearchRequest request(q.symbols);
      request.EValue(20000.0);
      auto min_score = (*engine)->ResolveMinScore(request);
      OASIS_CHECK(min_score.ok());
      last_min_score = *min_score;
      util::Timer timer;
      auto outcome = (*engine)->SearchAll(request);
      OASIS_CHECK(outcome.ok());
      oasis_s += timer.ElapsedSeconds();
      oasis_cols += outcome->stats.columns_expanded;

      align::AlignStats sw_stats;
      timer.Restart();
      auto hits = align::ScanDatabase(q.symbols, resident, matrix, *min_score,
                                      &sw_stats);
      sw_s += timer.ElapsedSeconds();
      sw_cols += sw_stats.columns_expanded;
    }
    std::printf("%-12llu %10d %12.4f %12.4f %10.2f %12llu %9.2f%%\n",
                static_cast<unsigned long long>(resident.num_residues()),
                last_min_score, oasis_s / queries->size(),
                sw_s / queries->size(), sw_s / oasis_s,
                static_cast<unsigned long long>(oasis_cols / queries->size()),
                100.0 * static_cast<double>(oasis_cols) /
                    static_cast<double>(sw_cols));
  }
  std::printf("\nshape check: speedup and column filtering improve "
              "monotonically with database size\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
