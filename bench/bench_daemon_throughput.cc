// Warm daemon vs cold per-query engine open — the case for oasisd.
//
// The daemon's pitch is that the per-query fixed costs of the CLI loop —
// reopen the index, reallocate the pool, rewarm it from a cold start —
// are paid once instead of per query. This bench measures exactly that
// gap on the standard bench workload and enforces the acceptance floor
// through its exit code:
//
//   phase 1  cold loop: every query pays Engine::Open + search, the
//            "for q in queries; do oasis_cli search; done" shape;
//   phase 2  warm daemon: one in-process Server over the already-open
//            engine, the same queries over real sockets with the result
//            cache bypassed (nc=1) so every request runs the search.
//            Floor: warm QPS >= 2x cold QPS.
//   phase 3  result cache: the same queries, cache enabled, kRounds
//            rounds. Every round after the first must be served from the
//            cache, so hits/lookups = (kRounds-1)/kRounds exactly —
//            deterministic, gated in ci/bench_baseline.json
//            (daemon.cache.hit_ratio over daemon.cache.lookups);
//   phase 4  deadline overhead: the undeadlined local search loop vs the
//            same loop under a far-future deadline. The poll is one
//            predictable branch per queue pop, so the ratio is recorded
//            (daemon.deadline_overhead) but not gated — wall-clock noise
//            on shared runners dwarfs it.
//
// Scaling knobs: the usual bench_common environment variables.

#include <string>
#include <vector>

#include "bench_common.h"
#include "server/client.h"
#include "server/server.h"

namespace oasis {
namespace bench {
namespace {

/// Acceptance floor: the warm daemon must answer at least this many times
/// the cold-loop QPS.
constexpr double kRequiredSpeedup = 2.0;

/// Cache-phase rounds; round 1 populates, rounds 2..k replay.
constexpr int kRounds = 11;

/// One full pass over the queries against a live daemon. Returns the
/// total hit count (sanity: every pass must see the same stream).
uint64_t RunPass(server::DaemonClient& client,
                 const std::vector<std::string>& queries, bool no_cache) {
  uint64_t hits = 0;
  for (const std::string& text : queries) {
    server::WireRequest wire;
    wire.query = text;
    wire.no_cache = no_cache;
    auto outcome =
        client.Query(wire, [&hits](std::string_view) {
          ++hits;
          return true;
        });
    OASIS_CHECK(outcome.ok()) << outcome.status().ToString();
  }
  return hits;
}

/// The cold-CLI shape: open the index, run one query, drop the engine.
double MeasureColdLoop(const BenchEnv& env,
                       const std::vector<std::string>& queries) {
  api::EngineOptions options;
  options.matrix = env.matrix;
  options.io_mode = api::IoMode::kPooled;
  util::Timer timer;
  uint64_t hits = 0;
  for (const std::string& text : queries) {
    auto engine = api::Engine::Open(env.dir->path(), options);
    OASIS_CHECK(engine.ok()) << engine.status().ToString();
    auto request = api::SearchRequest::FromText((*engine)->alphabet(), text);
    OASIS_CHECK(request.ok()) << request.status().ToString();
    auto batch = (*engine)->SearchAll(*request);
    OASIS_CHECK(batch.ok()) << batch.status().ToString();
    hits += batch->results.size();
  }
  const double seconds = timer.ElapsedSeconds();
  OASIS_CHECK_GT(hits, 0u);
  return static_cast<double>(queries.size()) / seconds;
}

/// Local search loop over the resident engine, optionally deadlined far
/// in the future (the poll runs, the abort never fires).
double MeasureLocalLoop(const BenchEnv& env,
                        const std::vector<std::string>& queries,
                        bool with_deadline) {
  util::Timer timer;
  uint64_t hits = 0;
  for (const std::string& text : queries) {
    auto request = api::SearchRequest::FromText(env.engine->alphabet(), text);
    OASIS_CHECK(request.ok()) << request.status().ToString();
    if (with_deadline) {
      request->Deadline(std::chrono::steady_clock::now() +
                        std::chrono::hours(1));
    }
    auto batch = env.engine->SearchAll(*request);
    OASIS_CHECK(batch.ok()) << batch.status().ToString();
    hits += batch->results.size();
  }
  const double seconds = timer.ElapsedSeconds();
  OASIS_CHECK_GT(hits, 0u);
  return static_cast<double>(queries.size()) / seconds;
}

int Run() {
  BenchEnv env = MakeProteinEnv();
  PrintHeader("oasisd: warm daemon vs cold per-query open", env);

  std::vector<std::string> queries;
  for (const workload::MotifQuery& q : env.queries) {
    queries.push_back(env.engine->alphabet().Decode(q.symbols));
  }

  // Phase 1: the cold loop.
  const double cold_qps = MeasureColdLoop(env, queries);

  // Phase 2: the warm daemon, cache bypassed.
  server::ServerOptions server_options;
  auto server = server::Server::Start({{"bench", env.engine.get()}},
                                      server_options);
  OASIS_CHECK(server.ok()) << server.status().ToString();
  auto client = server::DaemonClient::Connect("127.0.0.1", (*server)->port());
  OASIS_CHECK(client.ok()) << client.status().ToString();

  const uint64_t warmup_hits = RunPass(*client, queries, /*no_cache=*/true);
  util::Timer warm_timer;
  constexpr int kWarmPasses = 3;
  for (int pass = 0; pass < kWarmPasses; ++pass) {
    const uint64_t hits = RunPass(*client, queries, /*no_cache=*/true);
    OASIS_CHECK_EQ(hits, warmup_hits);
  }
  const double warm_qps = static_cast<double>(queries.size()) * kWarmPasses /
                          warm_timer.ElapsedSeconds();
  const double speedup = warm_qps / cold_qps;

  // Phase 3: the result cache. Round 1 populates, the rest replay.
  uint64_t round_hits = 0;
  for (int round = 0; round < kRounds; ++round) {
    const uint64_t hits = RunPass(*client, queries, /*no_cache=*/false);
    if (round == 0) {
      round_hits = hits;
    } else {
      OASIS_CHECK_EQ(hits, round_hits);  // cached replays are identical
    }
  }
  const server::ResultCache::Stats cache = (*server)->cache_stats();
  const double hit_ratio =
      cache.lookups == 0
          ? 0.0
          : static_cast<double>(cache.hits) / static_cast<double>(cache.lookups);

  // Phase 4: deadline overhead on the always-completing path.
  const double undeadlined_qps =
      MeasureLocalLoop(env, queries, /*with_deadline=*/false);
  const double deadlined_qps =
      MeasureLocalLoop(env, queries, /*with_deadline=*/true);
  const double deadline_overhead = undeadlined_qps / deadlined_qps;

  (*server)->Shutdown();

  std::printf("\n%-28s %12s\n", "phase", "QPS");
  std::printf("%-28s %12.1f\n", "cold open-per-query", cold_qps);
  std::printf("%-28s %12.1f   (%.2fx cold, floor %.1fx)\n", "warm daemon",
              warm_qps, speedup, kRequiredSpeedup);
  std::printf("%-28s %12.1f\n", "local undeadlined", undeadlined_qps);
  std::printf("%-28s %12.1f   (overhead %.3fx)\n", "local far deadline",
              deadlined_qps, deadline_overhead);
  std::printf("\nresult cache: %llu lookups, %llu hits (ratio %.6f, expect "
              "%.6f), %llu insertions\n",
              static_cast<unsigned long long>(cache.lookups),
              static_cast<unsigned long long>(cache.hits), hit_ratio,
              static_cast<double>(kRounds - 1) / kRounds,
              static_cast<unsigned long long>(cache.insertions));

  // The gate prefixes every key with the bench name, so these publish as
  // daemon.cache.hit_ratio etc. (ci/bench_baseline.json).
  WriteBenchJson("daemon",
                 {{"cache.hit_ratio", hit_ratio},
                  {"warm_qps", warm_qps},
                  {"cold_qps", cold_qps},
                  {"warm_vs_cold", speedup},
                  {"deadline_overhead", deadline_overhead}},
                 {{"cache.lookups", cache.lookups}});

  // The floors this binary itself enforces.
  bool ok = true;
  if (speedup < kRequiredSpeedup) {
    std::fprintf(stderr,
                 "FAIL: warm daemon %.2fx cold, below the %.1fx floor\n",
                 speedup, kRequiredSpeedup);
    ok = false;
  }
  const uint64_t expected_hits =
      static_cast<uint64_t>(kRounds - 1) * queries.size();
  if (cache.hits != expected_hits) {
    std::fprintf(stderr,
                 "FAIL: cache served %llu of %llu expected replays\n",
                 static_cast<unsigned long long>(cache.hits),
                 static_cast<unsigned long long>(expected_hits));
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
