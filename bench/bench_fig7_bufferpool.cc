// Figure 7: effect of buffer pool size — OASIS mean query time as the pool
// shrinks from "whole index resident" down to a small fraction of it.
//
// Expected shape (paper §4.5): flat while the index fits; degrading as the
// pool shrinks below the tree size (paper: +57.5% at a quarter of the
// tree). The pool is cleared between sweep points so each point starts
// cold and warms over the workload, as in the paper's per-workload means.

#include "bench_common.h"

namespace oasis {
namespace bench {
namespace {

int Run() {
  BenchEnv env = MakeProteinEnv();
  PrintHeader("Figure 7: mean query time vs buffer pool size, E=20000", env);

  const uint64_t index_bytes = env.tree->index_bytes();
  std::printf("index size: %.2f MiB\n\n",
              static_cast<double>(index_bytes) / (1 << 20));

  // Sweep pool sizes as fractions of the index, mirroring the paper's
  // 32M..512M axis on the 500MB tree.
  const double fractions[] = {1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2, 1.0, 1.25};

  std::printf("%-16s %14s %14s %12s\n", "pool (MiB)", "pool/index",
              "mean time (s)", "hit ratio");
  double base_time = -1.0;
  for (double fraction : fractions) {
    uint64_t pool_bytes =
        static_cast<uint64_t>(static_cast<double>(index_bytes) * fraction);
    // Reopen everything with this pool size (fresh, cold pool).
    storage::BufferPool pool(pool_bytes);
    auto tree = suffix::PackedSuffixTree::Open(env.dir->path(), &pool);
    OASIS_CHECK(tree.ok()) << tree.status().ToString();
    core::OasisSearch search(tree->get(), env.matrix);

    util::Timer timer;
    for (const auto& q : env.queries) {
      score::ScoreT min_score = score::MinScoreForEValue(
          env.karlin, 20000.0, q.symbols.size(), env.db_residues());
      core::OasisOptions options;
      options.min_score = min_score;
      auto results = search.SearchAll(q.symbols, options);
      OASIS_CHECK(results.ok());
    }
    double mean = timer.ElapsedSeconds() / env.queries.size();
    if (fraction >= 1.0 && base_time < 0) base_time = mean;

    storage::SegmentStats total = pool.TotalStats();
    std::printf("%-16.2f %14.2f %14.4f %12.3f\n",
                static_cast<double>(pool.capacity_bytes()) / (1 << 20),
                fraction, mean, total.hit_ratio());
  }
  std::printf("\npaper shape check: time degrades as pool/index drops below "
              "1 (paper: +57.5%% at 1/4)\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
