// Shared sharded buffer pool vs the old replica-per-thread design.
//
// Before the concurrent pool, every SearchBatch worker opened its own
// PackedSuffixTree replica over a private CLOCK pool: with T threads the
// total pool budget was split T ways and no worker saw another's cache
// warmth, so the Figure 7/8 hit-ratio story collapsed as T grew. This
// bench runs the same query workload both ways at EQUAL TOTAL POOL BYTES
// and reports wall-clock throughput plus the aggregate hit ratio.
//
// Expected shape: the shared pool's aggregate hit ratio stays at (or
// above) the single-thread baseline at every thread count, while the
// replica design's ratio decays as each private pool shrinks. Wall-clock
// speedup additionally needs real cores.
//
// Scaling knobs: the usual bench_common environment variables, plus
//   OASIS_BATCH_THREADS  max worker count to sweep to   (default 8)
//   OASIS_POOL_MB        total pool budget in MiB       (default 64;
//                        pick ~index/4 to make eviction visible)

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "suffix/packed_tree.h"

namespace oasis {
namespace bench {
namespace {

struct ModeOutcome {
  double seconds = 0;
  storage::SegmentStats stats;  ///< aggregated over every pool involved
  uint64_t results = 0;
};

/// Runs the workload with `threads` workers, each over its own tree
/// replica + private pool of total_bytes/threads (the pre-refactor design).
ModeOutcome RunReplicaMode(const BenchEnv& env,
                           const std::vector<core::OasisOptions>& resolved,
                           uint32_t threads, uint64_t total_bytes) {
  ModeOutcome outcome;
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> results{0};
  std::mutex stats_mutex;
  util::Timer timer;
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&]() {
      storage::BufferPool pool(std::max<uint64_t>(1, total_bytes / threads));
      auto tree = suffix::PackedSuffixTree::Open(env.dir->path(), &pool);
      OASIS_CHECK(tree.ok()) << tree.status().ToString();
      core::OasisSearch search(tree->get(), env.matrix);
      while (true) {
        const size_t i = next.fetch_add(1);
        if (i >= env.queries.size()) break;
        auto out = search.SearchAll(env.queries[i].symbols, resolved[i]);
        OASIS_CHECK(out.ok()) << out.status().ToString();
        results.fetch_add(out->size());
      }
      const storage::SegmentStats local = pool.TotalStats();
      std::lock_guard<std::mutex> lock(stats_mutex);
      outcome.stats.requests += local.requests;
      outcome.stats.hits += local.hits;
    });
  }
  for (auto& w : workers) w.join();
  outcome.seconds = timer.ElapsedSeconds();
  outcome.results = results.load();
  return outcome;
}

/// Runs the workload with `threads` workers over ONE shared tree + pool of
/// the full budget (the refactored design).
ModeOutcome RunSharedMode(const BenchEnv& env,
                          const std::vector<core::OasisOptions>& resolved,
                          uint32_t threads, uint64_t total_bytes) {
  ModeOutcome outcome;
  storage::BufferPool pool(total_bytes);
  auto tree = suffix::PackedSuffixTree::Open(env.dir->path(), &pool);
  OASIS_CHECK(tree.ok()) << tree.status().ToString();
  core::OasisSearch search(tree->get(), env.matrix);

  std::atomic<size_t> next{0};
  std::atomic<uint64_t> results{0};
  util::Timer timer;
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&]() {
      while (true) {
        const size_t i = next.fetch_add(1);
        if (i >= env.queries.size()) break;
        auto out = search.SearchAll(env.queries[i].symbols, resolved[i]);
        OASIS_CHECK(out.ok()) << out.status().ToString();
        results.fetch_add(out->size());
      }
    });
  }
  for (auto& w : workers) w.join();
  outcome.seconds = timer.ElapsedSeconds();
  outcome.stats = pool.TotalStats();
  outcome.results = results.load();
  return outcome;
}

int Run() {
  BenchEnv env = MakeProteinEnv();
  PrintHeader("Shared sharded pool vs replica-per-thread, equal total bytes",
              env);

  // A budget of a quarter of the index keeps eviction in play; callers can
  // override with OASIS_POOL_MB.
  const uint64_t default_bytes = std::max<uint64_t>(
      storage::kDefaultBlockSize, env.tree->index_bytes() / 4);
  const int64_t pool_mb = util::EnvInt64("OASIS_POOL_MB", 0);
  const uint64_t total_bytes =
      pool_mb > 0 ? static_cast<uint64_t>(pool_mb) << 20 : default_bytes;
  std::printf("index: %.2f MiB, total pool budget: %.2f MiB\n\n",
              static_cast<double>(env.tree->index_bytes()) / (1 << 20),
              static_cast<double>(total_bytes) / (1 << 20));

  // Resolve once (E=1000, same as the batch-throughput bench).
  std::vector<core::OasisOptions> resolved(env.queries.size());
  for (size_t i = 0; i < env.queries.size(); ++i) {
    resolved[i].min_score = score::MinScoreForEValue(
        env.karlin, 1000.0, env.queries[i].symbols.size(), env.db_residues());
  }

  const uint32_t max_threads =
      static_cast<uint32_t>(util::EnvInt64("OASIS_BATCH_THREADS", 8));
  std::printf("%-8s | %12s %10s %9s | %12s %10s %9s\n", "threads",
              "replica(s)", "qps", "hit", "shared(s)", "qps", "hit");

  double baseline_hit = -1.0;
  bool hit_ok = true;
  uint64_t reference_results = 0;
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<std::pair<std::string, uint64_t>> counts;
  for (uint32_t threads = 1; threads <= max_threads; threads *= 2) {
    ModeOutcome replica = RunReplicaMode(env, resolved, threads, total_bytes);
    ModeOutcome shared = RunSharedMode(env, resolved, threads, total_bytes);
    OASIS_CHECK_EQ(replica.results, shared.results)
        << "modes must find identical result sets";
    if (threads == 1) {
      baseline_hit = shared.stats.hit_ratio();
      reference_results = shared.results;
    }
    OASIS_CHECK_EQ(shared.results, reference_results)
        << "thread count must not change the result set";
    // The shared pool must hold the single-thread hit ratio at every
    // thread count (tiny slack absorbs interleaving-order noise).
    if (shared.stats.hit_ratio() + 0.01 < baseline_hit) hit_ok = false;

    const double n = static_cast<double>(env.queries.size());
    std::printf("%-8u | %12.4f %10.1f %9.3f | %12.4f %10.1f %9.3f\n", threads,
                replica.seconds, n / replica.seconds,
                replica.stats.hit_ratio(), shared.seconds, n / shared.seconds,
                shared.stats.hit_ratio());
    const std::string t = "t" + std::to_string(threads);
    metrics.emplace_back("hit.shared." + t, shared.stats.hit_ratio());
    metrics.emplace_back("hit.replica." + t, replica.stats.hit_ratio());
    metrics.emplace_back("qps.shared." + t, n / shared.seconds);
    // Denominators of the gated hit ratios (vacuous-pass guard).
    counts.emplace_back("requests.shared." + t, shared.stats.requests);
    counts.emplace_back("requests.replica." + t, replica.stats.requests);
  }

  std::printf("\nshape check: shared hit ratio stays >= the single-thread "
              "baseline (%.3f) at every thread count: %s\n", baseline_hit,
              hit_ok ? "PASS" : "FAIL");
  std::printf("replica hit ratio decays as the per-worker pool shrinks; "
              "shared wall-clock speedup additionally needs real cores\n");
  WriteBenchJson("shared_pool", metrics, counts);
  return hit_ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
