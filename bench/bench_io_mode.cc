// kMmap vs kPooled block access on an in-RAM index.
//
// The acceptance bar for the mmap fast path: with the whole index resident
// (pool sized to the full index vs the three files mmapped), raw block
// accesses through the mapped PageSource must beat the pooled path by at
// least 1.5x — the pooled hit path still pays an atomic stats bump, a
// shard lock, a hash probe and pin traffic per access, while the mapped
// path is a bounds check and pointer arithmetic. The gap widens with
// threads contending on shard locks.
//
// Two tables: raw internal-node block accesses (the access the search loop
// does most) at 1 and 4 threads, and an end-to-end query workload in both
// modes, whose result counts must be identical.
//
// Scaling knobs: the usual bench_common environment variables.

#include <atomic>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "suffix/packed_tree.h"
#include "util/random.h"

namespace oasis {
namespace bench {
namespace {

constexpr double kRequiredSpeedup = 1.5;

/// Random internal-node reads over `tree` with `threads` workers; returns
/// accesses per second. `indices` is pre-generated so both modes replay
/// the identical trace.
double MeasureBlockAccess(const suffix::PackedSuffixTree& tree,
                          const std::vector<uint32_t>& indices,
                          uint32_t threads) {
  std::atomic<uint64_t> checksum{0};
  util::Timer timer;
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      // Each worker walks the shared trace from its own offset so threads
      // touch the same blocks in different orders (shard contention in the
      // pooled mode, nothing shared in the mapped mode).
      uint64_t local = 0;
      const size_t n = indices.size();
      for (size_t i = 0; i < n; ++i) {
        const uint32_t idx = indices[(i + t * (n / (threads + 1))) % n];
        auto node = tree.ReadInternal(idx);
        OASIS_CHECK(node.ok()) << node.status().ToString();
        local += node->depth();
      }
      checksum.fetch_add(local);
    });
  }
  for (auto& w : workers) w.join();
  const double seconds = timer.ElapsedSeconds();
  OASIS_CHECK_GT(checksum.load(), 0u);
  return static_cast<double>(indices.size()) * threads / seconds;
}

/// Runs every env query through `tree` and returns (results, qps).
std::pair<uint64_t, double> MeasureQueries(
    const BenchEnv& env, const suffix::PackedSuffixTree& tree,
    const std::vector<core::OasisOptions>& resolved) {
  core::OasisSearch search(&tree, env.matrix);
  uint64_t results = 0;
  util::Timer timer;
  for (size_t i = 0; i < env.queries.size(); ++i) {
    auto out = search.SearchAll(env.queries[i].symbols, resolved[i]);
    OASIS_CHECK(out.ok()) << out.status().ToString();
    results += out->size();
  }
  return {results, static_cast<double>(env.queries.size()) /
                       timer.ElapsedSeconds()};
}

int Run() {
  BenchEnv env = MakeProteinEnv();
  PrintHeader("I/O modes: mmap fast path vs buffer pool, in-RAM index", env);

  // Pooled best case: the pool holds the entire index, so after one warmup
  // pass every access is a hit — this isolates the per-access overhead the
  // mmap path removes rather than measuring eviction.
  storage::BufferPool pool(env.tree->index_bytes() + (1u << 20));
  auto pooled = suffix::PackedSuffixTree::Open(env.dir->path(), &pool);
  OASIS_CHECK(pooled.ok()) << pooled.status().ToString();
  auto mapped = suffix::PackedSuffixTree::OpenMapped(env.dir->path());
  OASIS_CHECK(mapped.ok()) << mapped.status().ToString();
  OASIS_CHECK((*mapped)->mapped());

  const uint32_t num_internal =
      static_cast<uint32_t>((*pooled)->num_internal());
  util::Random rng(static_cast<uint64_t>(util::EnvInt64("OASIS_SEED", 42)));
  std::vector<uint32_t> indices(200000);
  for (uint32_t& idx : indices) {
    idx = static_cast<uint32_t>(rng.Uniform(num_internal));
  }
  // Warmup: fault the mapping in and make the pool fully resident.
  MeasureBlockAccess(**pooled, indices, 1);
  MeasureBlockAccess(**mapped, indices, 1);

  std::vector<std::pair<std::string, double>> metrics;
  bool pass = true;
  std::printf("block accesses (random internal-node reads, %zu per thread)\n",
              indices.size());
  std::printf("%-8s %16s %16s %10s\n", "threads", "pooled (op/s)",
              "mmap (op/s)", "speedup");
  for (uint32_t threads : {1u, 4u}) {
    const double pooled_ops = MeasureBlockAccess(**pooled, indices, threads);
    const double mapped_ops = MeasureBlockAccess(**mapped, indices, threads);
    const double speedup = mapped_ops / pooled_ops;
    std::printf("%-8u %16.0f %16.0f %9.2fx\n", threads, pooled_ops,
                mapped_ops, speedup);
    const std::string t = "t" + std::to_string(threads);
    metrics.emplace_back("blockaccess.speedup." + t, speedup);
    if (speedup < kRequiredSpeedup) pass = false;
  }

  // End-to-end: the same query workload in both modes must agree exactly
  // on the result set, and the mapped mode should win wall-clock.
  std::vector<core::OasisOptions> resolved(env.queries.size());
  for (size_t i = 0; i < env.queries.size(); ++i) {
    resolved[i].min_score = score::MinScoreForEValue(
        env.karlin, 1000.0, env.queries[i].symbols.size(), env.db_residues());
  }
  auto [pooled_results, pooled_qps] = MeasureQueries(env, **pooled, resolved);
  auto [mapped_results, mapped_qps] = MeasureQueries(env, **mapped, resolved);
  OASIS_CHECK_EQ(pooled_results, mapped_results)
      << "modes must find identical result sets";
  std::printf("\nqueries end-to-end: pooled %.1f q/s, mmap %.1f q/s "
              "(%.2fx), %llu results in both modes\n",
              pooled_qps, mapped_qps, mapped_qps / pooled_qps,
              static_cast<unsigned long long>(pooled_results));
  metrics.emplace_back("query.speedup", mapped_qps / pooled_qps);

  std::printf("\nshape check: mmap >= %.1fx pooled block-access throughput "
              "at 1 and 4 threads: %s\n", kRequiredSpeedup,
              pass ? "PASS" : "FAIL");
  // Denominators for the gate's vacuous-pass check (ci/bench_gate.py
  // rejects gated ratios whose sample count is below a sanity floor).
  WriteBenchJson("io_mode", metrics,
                 {{"queries", env.queries.size()},
                  {"results", pooled_results}});
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
