// Adversarial masking bench: proves soft masking defuses the repeat bomb
// and costs nothing on clean input.
//
// Leg 1 (adversarial): a repeat-dense DNA database (workload repeat bomb —
// tandem low-complexity runs covering ~80% of the residues) is indexed
// twice, mask=off and mask=soft, and the same motif workload is searched
// against both. The bomb's runs give an unmasked index a seed hit at
// nearly every repeat position; the soft index excludes them from seeding
// while keeping every residue in the arc labels, so the measured speedup
// is pure pruned work, not lost sequence. The bench FAILS (exit 1) when
// the speedup falls below the floor (OASIS_MASK_MIN_SPEEDUP, default 3).
//
// Leg 2 (parity): a *verified* repeat-free protein database — sequences
// the repeat detector flags are redrawn until nothing masks — is indexed
// the same two ways. With nothing masked the soft build excludes nothing,
// and the two indexes must return byte-identical result streams. Any
// divergence FAILS the bench: masking must be free when there is nothing
// to mask.
//
// The speedup gate measures *work* (cells_computed, the paper's DP-cell
// currency), not wall time: the ratio is deterministic for a fixed seed,
// so the CI gate cannot flake on a noisy machine. Wall times are printed
// alongside for the humans.
//
// Knobs: OASIS_MASK_DB_RESIDUES (default 200000), OASIS_NUM_QUERIES
// (default 100), OASIS_MASK_MIN_SPEEDUP (default 3.0), OASIS_SEED.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "mask/tantan.h"

namespace oasis {
namespace bench {
namespace {

struct LegResult {
  double seconds = 0;
  uint64_t results = 0;
  uint64_t cells = 0;  ///< DP cells computed — the deterministic work measure
  std::vector<BatchResult> batches;
};

/// Drains every query through `engine` and returns wall time + work.
LegResult RunQueries(const api::Engine& engine,
                     const std::vector<workload::MotifQuery>& queries) {
  LegResult out;
  util::Timer timer;
  for (const workload::MotifQuery& query : queries) {
    auto batch = engine.SearchAll(SearchRequest(query.symbols).EValue(10.0));
    OASIS_CHECK(batch.ok()) << batch.status().ToString();
    out.results += batch->results.size();
    out.cells += batch->stats.cells_computed;
    out.batches.push_back(std::move(batch).value());
  }
  out.seconds = timer.ElapsedSeconds();
  return out;
}

/// A protein database the repeat detector certifies clean: any sequence
/// with a flagged position is redrawn (same id, same length) until nothing
/// masks. Deterministic given the seed, so the parity leg can demand exact
/// equality without flaking.
seq::SequenceDatabase MakeRepeatFreeProteinDb(uint64_t target_residues,
                                              uint64_t seed) {
  workload::ProteinDatabaseOptions options;
  options.target_residues = target_residues;
  options.seed = seed;
  auto db = workload::GenerateProteinDatabase(options);
  OASIS_CHECK(db.ok()) << db.status().ToString();
  const seq::Alphabet& alphabet = db->alphabet();
  std::vector<seq::Sequence> sequences = db->sequences();
  util::Random rng(seed ^ 0x5eedf00dull);
  bool clean = false;
  for (int round = 0; round < 200 && !clean; ++round) {
    clean = true;
    for (seq::Sequence& sequence : sequences) {
      std::vector<uint8_t> repeats =
          mask::FindRepeats(sequence.symbols(), alphabet.size());
      if (std::find(repeats.begin(), repeats.end(), uint8_t{1}) !=
          repeats.end()) {
        sequence = seq::Sequence(
            sequence.id(),
            workload::RandomProteinResidues(rng, sequence.size()));
        clean = false;
      }
    }
  }
  OASIS_CHECK(clean) << "could not draw a repeat-free protein database";
  auto rebuilt =
      seq::SequenceDatabase::Build(alphabet, std::move(sequences));
  OASIS_CHECK(rebuilt.ok()) << rebuilt.status().ToString();
  return std::move(rebuilt).value();
}

/// Builds one engine over a copy of `db` with the given mask mode. The
/// volume layout is forced (volume_size_bytes) so CollectStats reports the
/// per-volume indexed/masked suffix counts.
std::unique_ptr<api::Engine> BuildEngine(const seq::SequenceDatabase& db,
                                         const util::TempDir& dir,
                                         const std::string& name,
                                         api::MaskMode mode) {
  api::EngineOptions options;
  options.mask_mode = mode;
  options.volume_size_bytes = 1ull << 40;  // one real volume, stats rows on
  seq::SequenceDatabase copy = db;
  auto engine = api::Engine::CreateFromDatabase(std::move(copy),
                                                dir.path() + "/" + name,
                                                options);
  OASIS_CHECK(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

/// Sums the indexed / masked suffix counts across the engine's volumes.
std::pair<uint64_t, uint64_t> SuffixCounts(const api::Engine& engine) {
  uint64_t indexed = 0;
  uint64_t masked = 0;
  for (const util::VolumeStatsRow& row : engine.CollectStats().volumes) {
    indexed += row.indexed_suffixes;
    masked += row.masked_suffixes;
  }
  return {indexed, masked};
}

bool SameResults(const std::vector<BatchResult>& a,
                 const std::vector<BatchResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].results.size() != b[q].results.size()) return false;
    for (size_t i = 0; i < a[q].results.size(); ++i) {
      const core::OasisResult& x = a[q].results[i];
      const core::OasisResult& y = b[q].results[i];
      if (x.sequence_id != y.sequence_id || x.score != y.score ||
          x.db_end_pos != y.db_end_pos || x.query_end != y.query_end) {
        return false;
      }
    }
  }
  return true;
}

int Run() {
  const uint64_t residues =
      static_cast<uint64_t>(util::EnvInt64("OASIS_MASK_DB_RESIDUES", 200000));
  const uint32_t num_queries =
      static_cast<uint32_t>(util::EnvInt64("OASIS_NUM_QUERIES", 100));
  const uint64_t seed = static_cast<uint64_t>(util::EnvInt64("OASIS_SEED", 42));
  const char* floor_env = std::getenv("OASIS_MASK_MIN_SPEEDUP");
  const double min_speedup =
      floor_env != nullptr && floor_env[0] != '\0' ? std::atof(floor_env) : 3.0;

  std::printf("==================================================================\n");
  std::printf("masking bench: repeat-bomb speedup + clean-input parity\n");
  std::printf("==================================================================\n");

  // --- Leg 1: the repeat bomb -----------------------------------------------
  workload::RepeatBombOptions bomb_options;
  bomb_options.target_residues = residues;
  bomb_options.repeat_fraction = 0.9;
  bomb_options.seed = seed;
  auto bomb = workload::GenerateRepeatBombDatabase(bomb_options);
  OASIS_CHECK(bomb.ok()) << bomb.status().ToString();

  // Longer queries than the protein motif default: a long low-complexity
  // query matches a repeat-rich tree at thousands of loci (deep, expensive
  // expansions) and a masked tree at almost none — exactly the asymmetry
  // the adversarial leg exists to measure.
  workload::MotifQueryOptions q_options;
  q_options.num_queries = num_queries;
  q_options.min_length = 20;
  q_options.max_length = 56;
  q_options.log_mean = 3.5;
  q_options.seed = seed;
  auto queries = workload::GenerateMotifQueries(
      *bomb, score::SubstitutionMatrix::Blastn(), q_options);
  OASIS_CHECK(queries.ok()) << queries.status().ToString();

  util::TempDir dir("mask");
  auto unmasked = BuildEngine(*bomb, dir, "bomb_off", api::MaskMode::kOff);
  auto masked = BuildEngine(*bomb, dir, "bomb_soft", api::MaskMode::kSoft);
  const auto [off_indexed, off_masked] = SuffixCounts(*unmasked);
  const auto [soft_indexed, soft_masked] = SuffixCounts(*masked);
  std::printf("bomb db: %llu residues; suffixes indexed off=%llu "
              "soft=%llu (masked %llu)\n",
              static_cast<unsigned long long>(bomb->num_residues()),
              static_cast<unsigned long long>(off_indexed),
              static_cast<unsigned long long>(soft_indexed),
              static_cast<unsigned long long>(soft_masked));
  OASIS_CHECK(soft_masked > 0)
      << "repeat bomb masked nothing: the adversarial leg is vacuous";

  const LegResult off_leg = RunQueries(*unmasked, *queries);
  const LegResult soft_leg = RunQueries(*masked, *queries);
  const double speedup =
      soft_leg.cells > 0
          ? static_cast<double>(off_leg.cells) / static_cast<double>(soft_leg.cells)
          : 0.0;
  std::printf("%-10s %14s %10s %12s\n", "mode", "cells", "time (s)",
              "results");
  std::printf("%-10s %14llu %10.3f %12llu\n", "off",
              static_cast<unsigned long long>(off_leg.cells), off_leg.seconds,
              static_cast<unsigned long long>(off_leg.results));
  std::printf("%-10s %14llu %10.3f %12llu\n", "soft",
              static_cast<unsigned long long>(soft_leg.cells), soft_leg.seconds,
              static_cast<unsigned long long>(soft_leg.results));
  std::printf("adversarial work speedup: %.2fx (floor %.2fx)\n", speedup,
              min_speedup);

  // --- Leg 2: clean-input parity --------------------------------------------
  seq::SequenceDatabase clean = MakeRepeatFreeProteinDb(residues / 4, seed);

  workload::MotifQueryOptions pq_options;
  pq_options.num_queries = std::max<uint32_t>(20, num_queries / 5);
  pq_options.seed = seed;
  auto clean_queries = workload::GenerateMotifQueries(
      clean, score::SubstitutionMatrix::Pam30(), pq_options);
  OASIS_CHECK(clean_queries.ok()) << clean_queries.status().ToString();

  auto clean_off = BuildEngine(clean, dir, "clean_off", api::MaskMode::kOff);
  auto clean_soft = BuildEngine(clean, dir, "clean_soft", api::MaskMode::kSoft);
  const auto [clean_indexed, clean_masked] = SuffixCounts(*clean_soft);
  OASIS_CHECK(clean_masked == 0)
      << "the certified-clean database still masked " << clean_masked
      << " suffixes";
  const LegResult clean_off_leg = RunQueries(*clean_off, *clean_queries);
  const LegResult clean_soft_leg = RunQueries(*clean_soft, *clean_queries);
  // Identical results AND identical work: the soft build of a clean input
  // must be the same index, not merely an equivalent one.
  const bool parity =
      SameResults(clean_off_leg.batches, clean_soft_leg.batches) &&
      clean_off_leg.cells == clean_soft_leg.cells &&
      clean_indexed == SuffixCounts(*clean_off).first;
  std::printf("clean protein db: %llu residues, %llu suffixes masked; "
              "parity %s (%llu vs %llu results, %llu vs %llu cells)\n",
              static_cast<unsigned long long>(clean.num_residues()),
              static_cast<unsigned long long>(clean_masked),
              parity ? "OK" : "BROKEN",
              static_cast<unsigned long long>(clean_off_leg.results),
              static_cast<unsigned long long>(clean_soft_leg.results),
              static_cast<unsigned long long>(clean_off_leg.cells),
              static_cast<unsigned long long>(clean_soft_leg.cells));

  // bench_gate.py prefixes every key with the bench name, so these merge
  // into the artifact as masking.adversarial.speedup etc.
  WriteBenchJson("masking",
                 {{"adversarial.speedup", speedup},
                  {"clean.parity", parity ? 1.0 : 0.0}},
                 {{"adversarial.queries", queries->size()},
                  {"adversarial.masked_suffixes", soft_masked}});

  if (!parity) {
    std::fprintf(stderr,
                 "FAIL: soft masking changed results on repeat-free input\n");
    return 1;
  }
  if (speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: adversarial speedup %.2fx below floor %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
