// Shared environment for the figure/table reproduction benches.
//
// Every bench binary builds the same SWISS-PROT-shaped protein database
// (see DESIGN.md §2), packs the suffix tree into a temp directory, prepares
// the ProClass-shaped motif query workload, and prints a paper-style table.
//
// Scaling knobs (environment variables):
//   OASIS_DB_RESIDUES   database size in residues   (default 1000000)
//   OASIS_NUM_QUERIES   number of motif queries      (default 50)
//   OASIS_POOL_MB       buffer pool size in MiB      (default 64)
//   OASIS_SEED          workload seed                (default 42)
//
// Absolute numbers depend on the machine; the *shape* of each table is what
// reproduces the paper (EXPERIMENTS.md records both).

#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "core/oasis.h"
#include "score/karlin.h"
#include "seq/database.h"
#include "storage/buffer_pool.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/timer.h"
#include "workload/workload.h"

namespace oasis {
namespace bench {

/// The bench environment is built through the oasis::Engine facade; the
/// raw pointers below alias engine-owned components for the benches that
/// drive the core layers directly (that is the point of several figures).
struct BenchEnv {
  std::unique_ptr<util::TempDir> dir;
  std::unique_ptr<api::Engine> engine;
  const seq::SequenceDatabase* db = nullptr;       ///< engine-resident
  const suffix::PackedSuffixTree* tree = nullptr;  ///< engine-owned
  std::vector<workload::MotifQuery> queries;
  score::KarlinParams karlin;
  const score::SubstitutionMatrix* matrix = nullptr;

  uint64_t db_residues() const { return db->num_residues(); }
};

/// Builds the standard protein bench environment. Aborts on failure (benches
/// have no meaningful degraded mode).
inline BenchEnv MakeProteinEnv(uint64_t pool_bytes_override = 0) {
  BenchEnv env;
  env.matrix = &score::SubstitutionMatrix::Pam30();

  workload::ProteinDatabaseOptions db_options;
  db_options.target_residues =
      static_cast<uint64_t>(util::EnvInt64("OASIS_DB_RESIDUES", 1000000));
  db_options.seed = static_cast<uint64_t>(util::EnvInt64("OASIS_SEED", 42));
  auto db = workload::GenerateProteinDatabase(db_options);
  OASIS_CHECK(db.ok()) << db.status().ToString();

  env.dir = std::make_unique<util::TempDir>("bench");
  api::EngineOptions options;
  options.matrix = env.matrix;
  // The figure benches exist to measure the paper's buffer-pool behaviour,
  // so the shared env engine always uses the pooled path; bench_io_mode
  // opens its own mapped tree to compare the mmap fast path against it.
  options.io_mode = api::IoMode::kPooled;
  options.pool_bytes =
      pool_bytes_override != 0
          ? pool_bytes_override
          : static_cast<uint64_t>(util::EnvInt64("OASIS_POOL_MB", 64)) << 20;
  auto engine = api::Engine::CreateFromDatabase(std::move(db).value(),
                                                env.dir->path(), options);
  OASIS_CHECK(engine.ok()) << engine.status().ToString();
  env.engine = std::move(engine).value();
  env.db = env.engine->database();
  env.tree = &env.engine->tree();
  OASIS_CHECK(env.engine->has_karlin());
  env.karlin = env.engine->karlin();

  workload::MotifQueryOptions q_options;
  q_options.num_queries =
      static_cast<uint32_t>(util::EnvInt64("OASIS_NUM_QUERIES", 50));
  q_options.seed = db_options.seed;
  auto queries =
      workload::GenerateMotifQueries(*env.db, *env.matrix, q_options);
  OASIS_CHECK(queries.ok()) << queries.status().ToString();
  env.queries = std::move(queries).value();
  return env;
}

/// Buckets query indices by length (paper figures plot vs query length).
inline std::map<uint32_t, std::vector<size_t>> BucketByLength(
    const std::vector<workload::MotifQuery>& queries, uint32_t bucket = 8) {
  std::map<uint32_t, std::vector<size_t>> buckets;
  for (size_t i = 0; i < queries.size(); ++i) {
    uint32_t len = static_cast<uint32_t>(queries[i].symbols.size());
    buckets[(len / bucket) * bucket].push_back(i);
  }
  return buckets;
}

/// Writes the bench's headline metrics as JSON when OASIS_BENCH_JSON names
/// an output path (the CI bench-smoke job sets it; see ci/bench_gate.py,
/// which merges these files into BENCH_ci.json and gates them against the
/// checked-in baseline). No-op otherwise.
///
/// `counts` carries the raw event totals (requests, prefetches issued, ...)
/// behind the ratio metrics. The gate uses them as vacuous-pass guards: a
/// gated ratio whose declared denominator count is below the baseline's
/// sanity floor fails the job — a misconfigured bench that drove zero
/// traffic would otherwise sail through on a perfect-looking 1.0.
inline void WriteBenchJson(
    const std::string& bench,
    const std::vector<std::pair<std::string, double>>& metrics,
    const std::vector<std::pair<std::string, uint64_t>>& counts = {}) {
  const char* path = std::getenv("OASIS_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write OASIS_BENCH_JSON '%s'\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"metrics\": {", bench.c_str());
  for (size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(out, "%s\n    \"%s\": %.6f", i == 0 ? "" : ",",
                 metrics[i].first.c_str(), metrics[i].second);
  }
  std::fprintf(out, "\n  },\n  \"counts\": {");
  for (size_t i = 0; i < counts.size(); ++i) {
    std::fprintf(out, "%s\n    \"%s\": %llu", i == 0 ? "" : ",",
                 counts[i].first.c_str(),
                 static_cast<unsigned long long>(counts[i].second));
  }
  std::fprintf(out, "\n  }\n}\n");
  std::fclose(out);
  std::printf("\nwrote %zu metrics (%zu counts) to %s\n", metrics.size(),
              counts.size(), path);
}

inline void PrintHeader(const char* title, const BenchEnv& env) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title);
  std::printf("database: %llu residues, %zu sequences; matrix: %s; "
              "queries: %zu (len %s)\n",
              static_cast<unsigned long long>(env.db_residues()),
              env.db->num_sequences(), env.matrix->name().c_str(),
              env.queries.size(), "6-56, ProClass-shaped");
  std::printf("lambda=%.4f K=%.4f H=%.4f\n", env.karlin.lambda, env.karlin.K,
              env.karlin.H);
  std::printf("==================================================================\n");
}

}  // namespace bench
}  // namespace oasis
