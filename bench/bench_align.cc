// Scalar vs SIMD Smith-Waterman scan throughput (DP cells per second).
//
// The acceptance bar for the striped kernel layer (src/align/simd/): on
// the BLOSUM62 protein workload the SIMD scan must clear at least 3x the
// scalar cells/sec, enforced through the exit code — on any machine whose
// auto-dispatch resolves to a vector level. A build or CPU that resolves
// to scalar (OASIS_DISABLE_SIMD, non-x86) prints a note and skips the
// floor: there is nothing to compare.
//
// Both modes scan the identical database with the identical queries, and
// the bench CHECKs that every hit (score, coordinates, order) and both
// AlignStats counters agree exactly — the parity invariant, enforced in
// the same breath as the speedup. A second, ungated table repeats the
// measurement on a Blastn DNA workload (longer targets, 4-symbol
// alphabet: a different profile shape).
//
// Scaling knobs: OASIS_DB_RESIDUES, OASIS_NUM_QUERIES, OASIS_SEED (the
// usual bench_common environment variables).

#include <string>
#include <utility>
#include <vector>

#include "align/simd/dispatch.h"
#include "align/smith_waterman.h"
#include "bench_common.h"
#include "score/substitution_matrix.h"
#include "seq/database.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/timer.h"
#include "workload/workload.h"

namespace oasis {
namespace bench {
namespace {

namespace simd = align::simd;

constexpr double kRequiredSpeedup = 3.0;
/// Repeat the scan until at least this much wall clock has accumulated;
/// the CI database is small enough that one pass is sub-millisecond.
constexpr double kMinSeconds = 0.25;

struct ScanMeasurement {
  double mcells_per_sec = 0;
  uint64_t cells = 0;  ///< DP cells per single pass (mode-independent)
  /// Every hit of one pass, concatenated across queries (parity check).
  std::vector<align::SequenceHit> hits;
};

/// Scans `db` with every query at `mode`, repeated until kMinSeconds of
/// wall clock; returns the throughput and one pass's hits.
ScanMeasurement MeasureScan(const seq::SequenceDatabase& db,
                            const std::vector<workload::MotifQuery>& queries,
                            const score::SubstitutionMatrix& matrix,
                            simd::SimdMode mode) {
  ScanMeasurement out;
  // Untimed first pass: captures hits + per-pass cell count, and warms
  // caches so both modes time steady-state.
  align::AlignStats pass_stats;
  for (const auto& query : queries) {
    auto hits = align::ScanDatabase(query.symbols, db, matrix, 1,
                                    &pass_stats, mode);
    out.hits.insert(out.hits.end(), hits.begin(), hits.end());
  }
  out.cells = pass_stats.cells_computed;
  OASIS_CHECK_GT(out.cells, 0u);

  uint64_t cells_timed = 0;
  util::Timer timer;
  do {
    align::AlignStats stats;
    for (const auto& query : queries) {
      align::ScanDatabase(query.symbols, db, matrix, 1, &stats, mode);
    }
    cells_timed += stats.cells_computed;
  } while (timer.ElapsedSeconds() < kMinSeconds);
  out.mcells_per_sec =
      static_cast<double>(cells_timed) / timer.ElapsedSeconds() / 1e6;
  return out;
}

/// The parity invariant, enforced at bench time: identical hits, in
/// order, byte for byte.
void CheckParity(const ScanMeasurement& scalar, const ScanMeasurement& simd,
                 const char* workload) {
  OASIS_CHECK_EQ(scalar.cells, simd.cells) << workload;
  OASIS_CHECK_EQ(scalar.hits.size(), simd.hits.size()) << workload;
  for (size_t i = 0; i < scalar.hits.size(); ++i) {
    OASIS_CHECK_EQ(scalar.hits[i].sequence_id, simd.hits[i].sequence_id)
        << workload << " hit " << i;
    OASIS_CHECK_EQ(scalar.hits[i].score, simd.hits[i].score)
        << workload << " hit " << i;
    OASIS_CHECK_EQ(scalar.hits[i].query_end, simd.hits[i].query_end)
        << workload << " hit " << i;
    OASIS_CHECK_EQ(scalar.hits[i].target_end, simd.hits[i].target_end)
        << workload << " hit " << i;
  }
}

int Run() {
  const uint64_t residues =
      static_cast<uint64_t>(util::EnvInt64("OASIS_DB_RESIDUES", 1000000));
  const uint32_t num_queries =
      static_cast<uint32_t>(util::EnvInt64("OASIS_NUM_QUERIES", 50));
  const uint64_t seed =
      static_cast<uint64_t>(util::EnvInt64("OASIS_SEED", 42));
  const simd::SimdLevel level = simd::ResolveLevel(simd::SimdMode::kAuto);

  std::printf("==================================================================\n");
  std::printf("Smith-Waterman scan: scalar vs SIMD (auto -> %s)\n",
              simd::SimdLevelName(level));
  std::printf("==================================================================\n");

  std::vector<std::pair<std::string, double>> metrics;
  std::vector<std::pair<std::string, uint64_t>> counts;

  // --- Protein / BLOSUM62: the gated workload. ---
  workload::ProteinDatabaseOptions pdb_options;
  pdb_options.target_residues = residues;
  pdb_options.seed = seed;
  auto pdb = workload::GenerateProteinDatabase(pdb_options);
  OASIS_CHECK(pdb.ok()) << pdb.status().ToString();
  const auto& blosum = score::SubstitutionMatrix::Blosum62();
  // Full-length queries, not the paper's short motifs: this bench measures
  // kernel throughput, and a 16-residue query under-fills the 32-lane
  // stripes (seg_len 1) so per-column overhead, not DP math, dominates.
  // ~250-residue queries are the BLAST protein shape the striped kernel
  // exists for.
  workload::MotifQueryOptions q_options;
  q_options.num_queries = num_queries;
  q_options.seed = seed;
  q_options.min_length = 64;
  q_options.max_length = 512;
  q_options.log_mean = 5.4;   // log-normal centred near length 220
  q_options.log_sigma = 0.35;
  auto pq = workload::GenerateMotifQueries(pdb.value(), blosum, q_options);
  OASIS_CHECK(pq.ok()) << pq.status().ToString();

  ScanMeasurement p_scalar = MeasureScan(pdb.value(), pq.value(), blosum,
                                         simd::SimdMode::kOff);
  ScanMeasurement p_simd = MeasureScan(pdb.value(), pq.value(), blosum,
                                       simd::SimdMode::kAuto);
  CheckParity(p_scalar, p_simd, "protein");
  const double p_speedup = p_simd.mcells_per_sec / p_scalar.mcells_per_sec;

  std::printf("%-18s %10s %16s %16s %9s\n", "workload", "matrix",
              "scalar (Mc/s)", "simd (Mc/s)", "speedup");
  std::printf("%-18s %10s %16.1f %16.1f %8.2fx\n", "protein", blosum.name().c_str(),
              p_scalar.mcells_per_sec, p_simd.mcells_per_sec, p_speedup);
  std::printf("  %llu cells/pass, %zu hits, parity OK\n",
              static_cast<unsigned long long>(p_simd.cells),
              p_simd.hits.size());
  metrics.emplace_back("scalar.mcps", p_scalar.mcells_per_sec);
  metrics.emplace_back("simd.mcps", p_simd.mcells_per_sec);
  metrics.emplace_back("simd.speedup", p_speedup);
  counts.emplace_back("simd.cells", p_simd.cells);

  // --- DNA / Blastn: ungated second shape (recorded in the artifact). ---
  workload::DnaDatabaseOptions ddb_options;
  ddb_options.target_residues = residues;
  ddb_options.seed = seed + 1;
  auto ddb = workload::GenerateDnaDatabase(ddb_options);
  OASIS_CHECK(ddb.ok()) << ddb.status().ToString();
  const auto& blastn = score::SubstitutionMatrix::Blastn();
  auto dq = workload::GenerateMotifQueries(ddb.value(), blastn, q_options);
  OASIS_CHECK(dq.ok()) << dq.status().ToString();

  ScanMeasurement d_scalar = MeasureScan(ddb.value(), dq.value(), blastn,
                                         simd::SimdMode::kOff);
  ScanMeasurement d_simd = MeasureScan(ddb.value(), dq.value(), blastn,
                                       simd::SimdMode::kAuto);
  CheckParity(d_scalar, d_simd, "dna");
  const double d_speedup = d_simd.mcells_per_sec / d_scalar.mcells_per_sec;
  std::printf("%-18s %10s %16.1f %16.1f %8.2fx\n", "dna", blastn.name().c_str(),
              d_scalar.mcells_per_sec, d_simd.mcells_per_sec, d_speedup);
  std::printf("  %llu cells/pass, %zu hits, parity OK\n",
              static_cast<unsigned long long>(d_simd.cells),
              d_simd.hits.size());
  metrics.emplace_back("dna.speedup", d_speedup);

  bool pass = true;
  if (level == simd::SimdLevel::kScalar) {
    std::printf("\nauto-dispatch resolved to scalar on this build/CPU; "
                "speedup floor skipped\n");
  } else {
    pass = p_speedup >= kRequiredSpeedup;
    std::printf("\nshape check: simd >= %.1fx scalar cells/sec on the "
                "protein workload: %s\n", kRequiredSpeedup,
                pass ? "PASS" : "FAIL");
  }
  WriteBenchJson("align", metrics, counts);
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace oasis

int main() { return oasis::bench::Run(); }
