#!/usr/bin/env python3
"""Enforce doc-comment coverage on the public storage/suffix/api headers.

Every public declaration — class/struct/enum at namespace scope, and every
member declared in a `public:` section — in the headers listed below must
be immediately preceded by a documentation comment (`///` line(s) or a
`/** ... */` block) or share the line with one. These headers are the
library's API surface; Doxygen renders exactly these comments, so a gap
here is a hole in the generated docs.

Hermetic on purpose: the CI docs job runs Doxygen too (malformed-comment
warnings), but THIS check gives identical answers with no Doxygen
installed, so it can gate locally. Run from anywhere in the repo:

  python3 ci/check_public_docs.py

Heuristics, to stay simple and zero-dependency:
  - only lines inside `public:` sections of classes (structs start
    public) are considered;
  - a declaration is a line group ending in `;` or `{` that is not a
    continuation, using-decl, friend-decl, assert, or macro;
  - access specifiers, blank lines, and comment lines separate groups.
"""

import os
import re
import subprocess
import sys

HEADERS = [
    "src/align/pair_aligner.h",
    "src/align/simd/dispatch.h",
    "src/align/simd/query_profile.h",
    "src/align/simd/sw_kernels.h",
    "src/align/simd/ungapped.h",
    "src/align/smith_waterman.h",
    "src/api/engine.h",
    "src/api/volume_set.h",
    "src/core/merge.h",
    "src/mask/tantan.h",
    "src/score/quality.h",
    "src/seq/fastq.h",
    "src/server/client.h",
    "src/server/flags.h",
    "src/server/result_cache.h",
    "src/server/server.h",
    "src/server/session.h",
    "src/server/wire.h",
    "src/storage/adaptive_readahead.h",
    "src/storage/buffer_pool.h",
    "src/storage/page_source.h",
    "src/storage/readahead.h",
    "src/storage/block_file.h",
    "src/suffix/packed_tree.h",
    "src/suffix/tree_cursor.h",
    "src/util/mutex.h",
    "src/util/stats_json.h",
    "src/util/thread_annotations.h",
]

# Declaration groups whose FIRST line matches one of these never need a
# doc comment of their own.
EXEMPT_RE = re.compile(
    r"^\s*(?:$|//|/\*|\*|#|\}|public:|private:|protected:|using\s|friend\s"
    r"|static_assert|typedef\s|OASIS_|namespace\s|extern\s"
    r"|(?:class|struct)\s+\w+;$"           # forward declaration
    r"|~?\w+\(\)\s*(?:=\s*default;|\{\})"  # trivial default ctor/dtor
    r"|~?\w+\((?:const\s+)?\w+\s*&&?\s*\w*\)"  # copy/move ctor + dtor
    r"|\w+&\s+operator=)"                  # copy/move assignment
)

CLASS_OPEN_RE = re.compile(
    r"^\s*(?:template\s*<[^>]*>\s*)?(class|struct)\s+(?:alignas\(\d+\)\s*)?"
    r"\w+(?:\s*:\s*[^{]*)?\{?\s*$|"
    r"^\s*(?:template\s*<[^>]*>\s*)?(class|struct)\s+"
    r"(?:alignas\(\d+\)\s*)?\w+\s.*\{$")


def repo_root():
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True, text=True, check=True)
    return out.stdout.strip()


class Scope:
    def __init__(self, kind, access):
        self.kind = kind      # 'class' | 'enum' | 'function' | 'namespace'
        self.access = access  # 'public' | 'private' (classes only)


def check_header(path, rel):
    with open(path, encoding="utf-8") as f:
        lines = f.readlines()

    failures = []
    scopes = [Scope("namespace", "public")]
    doc_pending = False
    in_block_comment = False
    group = []        # buffered lines of the current declaration
    group_doc = False  # was a doc comment pending when the group started
    group_start = 0

    def body_scope():
        return any(s.kind in ("function", "enum") for s in scopes)

    def all_public():
        return all(s.access == "public" for s in scopes)

    for lineno, raw in enumerate(lines, start=1):
        stripped = raw.strip()

        if in_block_comment:
            doc_pending = True
            if "*/" in stripped:
                in_block_comment = False
            continue
        if stripped.startswith(("/**", "/*!")):
            doc_pending = True
            if "*/" not in stripped:
                in_block_comment = True
            continue
        if stripped.startswith(("///", "//!")):
            doc_pending = True
            continue
        if stripped.startswith("//") or stripped == "" or \
                stripped.startswith("#"):
            if not group:
                doc_pending = False
            continue

        # Trailing `///<` documents its own line; then drop any trailing
        # line comment so `}  // namespace foo` parses as `}`.
        self_documented = "///<" in stripped
        stripped = re.sub(r"\s*//.*$", "", stripped).strip()
        if stripped == "":
            continue

        # Inside a function or enum body: only balance braces.
        if body_scope():
            for ch in stripped:
                if ch == "{":
                    scopes.append(Scope("function", "public"))
                elif ch == "}":
                    scopes.pop()
            doc_pending = False
            continue

        if stripped in ("public:", "private:", "protected:"):
            scopes[-1].access = stripped[:-1]
            doc_pending = False
            continue
        if stripped in ("};", "}"):
            scopes.pop()
            doc_pending = False
            continue

        if not group:
            group_doc = doc_pending
            group_start = lineno
        group_doc = group_doc or self_documented
        group.append(stripped)
        doc_pending = False
        if not (stripped.endswith(";") or stripped.endswith("{") or
                stripped.endswith("}")):
            continue  # declaration continues on the next line

        first = group[0]
        joined = " ".join(group)
        group = []
        class_open = CLASS_OPEN_RE.match(joined) and joined.endswith("{")
        enum_open = re.match(r"^\s*enum\s", joined) and joined.endswith("{")

        if (all_public() and not EXEMPT_RE.match(first)
                and not group_doc):
            failures.append((group_start, first))

        # Scope bookkeeping for whatever the group opened.
        if class_open:
            default = ("public"
                       if re.search(r"\bstruct\b", joined) else "private")
            scopes.append(Scope("class", default))
        elif enum_open:
            scopes.append(Scope("enum", "public"))
        elif joined.endswith("{"):
            kind = ("namespace"
                    if re.match(r"^\s*(?:inline\s+)?namespace\b", joined)
                    else "function")
            scopes.append(Scope(kind, "public"))

    return [(rel, lineno, text) for lineno, text in failures]


def main():
    root = repo_root()
    failures = []
    for rel in HEADERS:
        path = os.path.join(root, rel)
        if not os.path.exists(path):
            failures.append((rel, 0, "header listed in check_public_docs.py "
                                     "does not exist"))
            continue
        failures.extend(check_header(path, rel))

    if failures:
        print("public-header doc coverage FAILED "
              "(every public declaration needs a /// comment):")
        for rel, lineno, text in failures:
            print(f"  {rel}:{lineno}: {text}")
        sys.exit(1)
    print(f"public-header doc coverage passed ({len(HEADERS)} headers)")


if __name__ == "__main__":
    main()
