#!/usr/bin/env python3
"""Validate intra-repo links in every tracked *.md file.

Checks, for each markdown file in the repository:
  - relative links ([text](path), [text](path#anchor)) resolve to an
    existing file or directory;
  - anchors into markdown targets match a heading in that file (GitHub
    slug rules: lowercase, spaces to dashes, punctuation dropped);
  - reference-style definitions ([id]: path) resolve the same way.

External links (http/https/mailto) are deliberately NOT fetched: this
checker is hermetic so it gives identical answers in CI and on a laptop
with no network. Run it from anywhere inside the repo:

  python3 ci/check_md_links.py

Exit code 0 when every link resolves, 1 otherwise (one line per broken
link).
"""

import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF_RE = re.compile(r"^\[[^\]]+\]:\s*(\S+)", re.MULTILINE)
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def repo_root():
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True, text=True, check=True)
    return out.stdout.strip()


def tracked_markdown(root):
    out = subprocess.run(
        ["git", "ls-files", "--cached", "--others", "--exclude-standard",
         "*.md", "**/*.md"],
        capture_output=True, text=True, check=True, cwd=root)
    return sorted(set(out.stdout.split()))


def github_slug(heading):
    """GitHub's anchor slug: strip markdown, lowercase, spaces to dashes."""
    text = re.sub(r"[`*_]|\[|\]|\([^)]*\)", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path):
    with open(path, encoding="utf-8") as f:
        content = CODE_FENCE_RE.sub("", f.read())
    return {github_slug(m.group(1)) for m in HEADING_RE.finditer(content)}


def main():
    root = repo_root()
    failures = []
    checked = 0
    for md in tracked_markdown(root):
        md_path = os.path.join(root, md)
        with open(md_path, encoding="utf-8") as f:
            content = CODE_FENCE_RE.sub("", f.read())
        targets = [m.group(1) for m in LINK_RE.finditer(content)]
        targets += [m.group(1) for m in REF_DEF_RE.finditer(content)]
        for target in targets:
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:...
                continue
            checked += 1
            path_part, _, anchor = target.partition("#")
            if path_part == "":
                resolved = md_path  # same-file anchor
            else:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(md_path), path_part))
            if not os.path.exists(resolved):
                failures.append(f"{md}: broken link '{target}'")
                continue
            if anchor and resolved.endswith(".md"):
                if anchor.lower() not in anchors_of(resolved):
                    failures.append(
                        f"{md}: anchor '#{anchor}' not found in '{path_part or md}'")

    if failures:
        print("markdown link check FAILED:")
        for failure in failures:
            print(f"  {failure}")
        sys.exit(1)
    print(f"markdown link check passed ({checked} intra-repo links)")


if __name__ == "__main__":
    main()
