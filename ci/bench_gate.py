#!/usr/bin/env python3
"""Merge bench JSON outputs and gate them against the checked-in baseline.

Each bench binary writes a {"bench": name, "metrics": {...}, "counts":
{...}} file when OASIS_BENCH_JSON is set (see bench/bench_common.h). This
script merges those files into one BENCH_ci.json artifact and compares
every metric listed in the baseline's "gated" array against the baseline
value: all gated metrics are higher-is-better, and a value below
baseline * (1 - tolerance) fails the job. Ungated metrics (wall-clock
throughput on shared runners, mostly) are recorded in the artifact but
never fail CI.

Vacuous-pass guard: ratio metrics look perfect when nothing happened —
SegmentStats::hit_ratio() is 1.0 at zero requests — so a bench that
silently drove no traffic would pass every gate. The baseline's
"denominators" map therefore names, per gated metric, the raw event count
behind it; the gate fails any gated metric whose count is missing from
the run or below "min_count".

Usage:
  bench_gate.py --baseline ci/bench_baseline.json --out BENCH_ci.json \
      fig8.json shared_pool.json io_mode.json

Regenerating the baseline after an intentional perf change: run the benches
with the same OASIS_* settings the CI job uses, then
  bench_gate.py --baseline ci/bench_baseline.json --out BENCH_ci.json \
      --write-baseline ...files
which rewrites the baseline's metric values, keeping its gated list,
denominators, and tolerance.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--out", required=True)
    parser.add_argument("--write-baseline", action="store_true")
    parser.add_argument("inputs", nargs="+")
    args = parser.parse_args()

    baseline = load(args.baseline)
    tolerance = baseline.get("tolerance", 0.25)
    min_count = baseline.get("min_count", 100)
    denominators = baseline.get("denominators", {})

    merged = {}
    counts = {}
    for path in args.inputs:
        data = load(path)
        bench = data["bench"]
        for name, value in data["metrics"].items():
            merged[f"{bench}.{name}"] = value
        for name, value in data.get("counts", {}).items():
            counts[f"{bench}.{name}"] = value

    with open(args.out, "w") as f:
        json.dump(
            {
                "tolerance": tolerance,
                "min_count": min_count,
                "gated": baseline["gated"],
                "denominators": denominators,
                "metrics": merged,
                "counts": counts,
            },
            f,
            indent=2,
            sort_keys=True,
        )
        f.write("\n")
    print(f"wrote {len(merged)} metrics ({len(counts)} counts) to {args.out}")

    if args.write_baseline:
        baseline["metrics"] = {
            key: merged[key] for key in baseline["gated"] if key in merged
        }
        missing = [key for key in baseline["gated"] if key not in merged]
        if missing:
            sys.exit(f"gated metrics absent from this run: {missing}")
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"rewrote baseline {args.baseline}")
        return

    failures = []
    print(f"\n{'metric':48} {'baseline':>10} {'current':>10} {'floor':>10}")
    for key in baseline["gated"]:
        base = baseline["metrics"].get(key)
        current = merged.get(key)
        if base is None or current is None:
            failures.append(f"{key}: missing ({'baseline' if base is None else 'current run'})")
            continue
        # Vacuous-pass guard: the metric is only meaningful if the events
        # behind its denominator actually happened.
        denominator = denominators.get(key)
        if denominator is not None:
            events = counts.get(denominator)
            if events is None:
                failures.append(
                    f"{key}: denominator count '{denominator}' absent from "
                    f"this run (bench emitted no counts?)"
                )
                continue
            if events < min_count:
                failures.append(
                    f"{key}: vacuous — denominator '{denominator}' saw only "
                    f"{events} events (sanity floor {min_count}); the bench "
                    f"drove no meaningful traffic"
                )
                continue
        floor = base * (1.0 - tolerance)
        status = "ok" if current >= floor else "REGRESSION"
        print(f"{key:48} {base:10.4f} {current:10.4f} {floor:10.4f}  {status}")
        if current < floor:
            failures.append(
                f"{key}: {current:.4f} < floor {floor:.4f} (baseline {base:.4f})"
            )

    if failures:
        print("\nbench regression gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        sys.exit(1)
    print(f"\nbench regression gate passed ({len(baseline['gated'])} gated metrics)")


if __name__ == "__main__":
    main()
