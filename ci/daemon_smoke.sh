#!/usr/bin/env bash
# End-to-end smoke test for oasisd using the shipped binaries only.
#
# Exercises the full daemon lifecycle over real loopback sockets:
#
#   1. build a synthetic protein FASTA and index it with oasis_cli;
#   2. boot oasisd on an ephemeral port and scrape the port from its
#      one-line startup banner;
#   3. parity: `oasis_cli query --connect` must print byte-identical hit
#      lines to a local `oasis_cli search` over the same index;
#   4. cached replay: the second identical query is served from the
#      daemon's result cache and still prints the same hit lines;
#   5. deadline: a 1 ms per-request deadline on a broad query must cut
#      the stream short — exit code 3, kDeadlineExceeded;
#   6. cancel: --cancel-after sends a mid-stream cancel — exit code 4
#      (or 0 when the stream finished before the cancel landed);
#   7. concurrency: several clients in parallel against one daemon, all
#      streams identical to the local baseline;
#   8. /stats: the daemon's stats document parses as JSON and names the
#      served index;
#   9. multi-volume parity: the same FASTA grown with `build` + three
#      `append`s (a four-volume set) must produce the same
#      (sequence, score) hit set as the monolithic index, both through a
#      local search and through a second oasisd serving the volume set;
#  10. volume scoping: --volumes / --max-volumes narrow the same daemon
#      query, and an unknown volume name is rejected;
#  11. compact: `oasis_cli compact` merges the four volumes into one and
#      the hit set survives unchanged;
#  12. masking: an index built with `--mask soft` over a repeat-heavy
#      FASTA still finds queries drawn from the unique regions, locally
#      and through a third oasisd — gentle masking prunes repeat seeds
#      without losing real sequence;
#  13. SIGTERM: graceful drain, daemon exits 0.
#
# CI runs this against an ASan+UBSan build (.github/workflows/ci.yml,
# daemon-integration job) so the whole daemon process is under the
# sanitizer across startup, concurrent serving, and drain. Run locally:
#
#   cmake -B build -S . && cmake --build build -j --target oasisd oasis_cli
#   bash ci/daemon_smoke.sh
#
# BUILD_DIR overrides the build tree (default: ./build).
set -euo pipefail

BUILD_DIR=${BUILD_DIR:-build}
CLI=$BUILD_DIR/oasis_cli
DAEMON=$BUILD_DIR/oasisd
for bin in "$CLI" "$DAEMON"; do
  if [ ! -x "$bin" ]; then
    echo "missing binary: $bin (build the oasisd and oasis_cli targets)" >&2
    exit 1
  fi
done

WORK=$(mktemp -d)
DAEMON_PID=
MV_PID=
MASK_PID=
cleanup() {
  for pid in "$DAEMON_PID" "$MV_PID" "$MASK_PID"; do
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      kill -KILL "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

# Strip a query/search transcript down to its hit lines ("NAME score=S
# query_end=Q target_end=T"): `search` wraps them in a banner and a
# timing summary, `query` in a hit-count summary — the hit lines are the
# parity surface.
hits_only() { grep ' score=' "$1" || true; }

echo "== 1. synthesize and index a protein database"
python3 - "$WORK/db.fasta" <<'EOF'
import random, sys
random.seed(11)
alphabet = "ACDEFGHIKLMNPQRSTVWY"
with open(sys.argv[1], "w") as f:
    for i in range(120):
        n = random.randint(120, 400)
        residues = "".join(random.choice(alphabet) for _ in range(n))
        f.write(f">seq{i}\n{residues}\n")
EOF
"$CLI" index "$WORK/db.fasta" "$WORK/ix" --protein > /dev/null
# The query is a real 13-residue prefix of one database sequence, so a
# moderate min-score threshold is guaranteed to produce hits.
QUERY=$(sed -n '8p' "$WORK/db.fasta" | cut -c1-13)

echo "== 2. boot oasisd on an ephemeral port"
"$DAEMON" --index db="$WORK/ix" --port 0 --result-cache-mb 4 \
  > "$WORK/daemon.out" 2> "$WORK/daemon.err" &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  grep -q "oasisd listening on" "$WORK/daemon.out" 2>/dev/null && break
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "oasisd died during startup:" >&2
    cat "$WORK/daemon.err" >&2
    exit 1
  fi
  sleep 0.1
done
PORT=$(sed -n 's/^oasisd listening on .*:\([0-9][0-9]*\)$/\1/p' "$WORK/daemon.out")
if [ -z "$PORT" ]; then
  echo "could not scrape the port from the startup banner:" >&2
  cat "$WORK/daemon.out" >&2
  exit 1
fi
echo "   oasisd pid $DAEMON_PID on port $PORT"

echo "== 3. daemon-vs-local streaming parity"
"$CLI" search "$WORK/ix" "$QUERY" --minscore 15 > "$WORK/local.out"
"$CLI" query "$QUERY" --connect 127.0.0.1:"$PORT" --ix db --minscore 15 \
  > "$WORK/daemon1.out"
hits_only "$WORK/local.out" > "$WORK/local.hits"
hits_only "$WORK/daemon1.out" > "$WORK/daemon1.hits"
if [ ! -s "$WORK/local.hits" ]; then
  echo "local search produced no hits; the smoke query is broken" >&2
  exit 1
fi
diff -u "$WORK/local.hits" "$WORK/daemon1.hits"
echo "   $(wc -l < "$WORK/local.hits") hit lines, byte-identical"

echo "== 4. cached replay"
"$CLI" query "$QUERY" --connect 127.0.0.1:"$PORT" --ix db --minscore 15 \
  > "$WORK/daemon2.out"
grep -q "served from daemon result cache" "$WORK/daemon2.out" || {
  echo "second identical query was not served from the result cache" >&2
  exit 1
}
hits_only "$WORK/daemon2.out" > "$WORK/daemon2.hits"
diff -u "$WORK/local.hits" "$WORK/daemon2.hits"

echo "== 5. per-request deadline cuts the stream short (exit 3)"
rc=0
"$CLI" query "$QUERY" --connect 127.0.0.1:"$PORT" --ix db --minscore 8 \
  --deadline-ms 1 --no-cache > "$WORK/deadline.out" 2> "$WORK/deadline.err" \
  || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "expected exit 3 (deadline exceeded), got $rc" >&2
  cat "$WORK/deadline.err" >&2
  exit 1
fi

echo "== 6. mid-stream cancel (exit 4, or 0 if the stream won the race)"
rc=0
"$CLI" query "$QUERY" --connect 127.0.0.1:"$PORT" --ix db --minscore 8 \
  --cancel-after 1 --no-cache > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 4 ] && [ "$rc" -ne 0 ]; then
  echo "expected exit 4 (cancelled) or 0, got $rc" >&2
  exit 1
fi

echo "== 7. concurrent clients share the daemon and agree"
pids=()
for i in 1 2 3 4 5; do
  "$CLI" query "$QUERY" --connect 127.0.0.1:"$PORT" --ix db --minscore 15 \
    --no-cache > "$WORK/conc$i.out" &
  pids+=($!)
done
for pid in "${pids[@]}"; do wait "$pid"; done
for i in 1 2 3 4 5; do
  hits_only "$WORK/conc$i.out" > "$WORK/conc$i.hits"
  diff -u "$WORK/local.hits" "$WORK/conc$i.hits"
done

echo "== 8. /stats parses as JSON and names the index"
"$CLI" stats --connect 127.0.0.1:"$PORT" > "$WORK/stats.json"
python3 - "$WORK/stats.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert "server" in doc, "stats document lacks a 'server' section"
assert doc["server"]["cache"]["hits"] >= 1, "cached replay left no cache hit"
names = sorted(doc["indexes"])
assert names == ["db"], f"expected served index ['db'], got {names}"
assert "epoch" in doc["indexes"]["db"], "per-index stats lack the epoch"
EOF

# The multi-volume parity surface is (sequence, score) rather than byte
# identity: when a sequence reaches its best score at several equally
# good locations, which one the best-per-sequence stream reports depends
# on tree exploration order, which legitimately differs between one
# monolithic tree and per-volume trees. Scores and E-values are exact
# either way (unit tests pin the stronger all-alignments parity).
name_scores() { grep ' score=' "$1" | awk '{print $1, $2}' | sort; }

echo "== 9. multi-volume: build + three appends, same hit set"
python3 - "$WORK/db.fasta" "$WORK/chunk" <<'EOF'
import sys
lines = open(sys.argv[1]).read().splitlines()
records = [lines[i:i + 2] for i in range(0, len(lines), 2)]
per = (len(records) + 3) // 4
for c in range(4):
    with open(f"{sys.argv[2]}{c}.fasta", "w") as f:
        for rec in records[c * per:(c + 1) * per]:
            f.write("\n".join(rec) + "\n")
EOF
"$CLI" build "$WORK/chunk0.fasta" "$WORK/ix4" --protein > /dev/null
for c in 1 2 3; do
  "$CLI" append "$WORK/ix4" "$WORK/chunk$c.fasta" > /dev/null
done
"$CLI" search "$WORK/ix4" "$QUERY" --minscore 15 > "$WORK/mv_local.out"
name_scores "$WORK/local.out" > "$WORK/mono.ns"
name_scores "$WORK/mv_local.out" > "$WORK/mv_local.ns"
diff -u "$WORK/mono.ns" "$WORK/mv_local.ns"

echo "   boot a second oasisd serving the four-volume set"
"$DAEMON" --index mv="$WORK/ix4" --port 0 --result-cache-mb 4 \
  > "$WORK/daemon_mv.out" 2> "$WORK/daemon_mv.err" &
MV_PID=$!
for _ in $(seq 1 100); do
  grep -q "oasisd listening on" "$WORK/daemon_mv.out" 2>/dev/null && break
  if ! kill -0 "$MV_PID" 2>/dev/null; then
    echo "multi-volume oasisd died during startup:" >&2
    cat "$WORK/daemon_mv.err" >&2
    exit 1
  fi
  sleep 0.1
done
MV_PORT=$(sed -n 's/^oasisd listening on .*:\([0-9][0-9]*\)$/\1/p' "$WORK/daemon_mv.out")
"$CLI" query "$QUERY" --connect 127.0.0.1:"$MV_PORT" --ix mv --minscore 15 \
  > "$WORK/mv_daemon.out"
name_scores "$WORK/mv_daemon.out" > "$WORK/mv_daemon.ns"
diff -u "$WORK/mono.ns" "$WORK/mv_daemon.ns"
echo "   $(wc -l < "$WORK/mono.ns") (sequence, score) hits, identical in all three"

echo "== 10. volume scoping through the daemon"
"$CLI" query "$QUERY" --connect 127.0.0.1:"$MV_PORT" --ix mv --minscore 15 \
  --volumes vol_0000 --no-cache > "$WORK/mv_scoped.out"
scoped=$(name_scores "$WORK/mv_scoped.out" | wc -l)
full=$(wc -l < "$WORK/mono.ns")
if [ "$scoped" -gt "$full" ]; then
  echo "scoped query found more hits ($scoped) than the full set ($full)" >&2
  exit 1
fi
# The scoped hit set must be a subset of the full one (comm -23 prints
# lines only in the first, already-sorted, input).
if [ -n "$(comm -23 <(name_scores "$WORK/mv_scoped.out") "$WORK/mono.ns")" ]; then
  echo "scoped query produced hits outside the full set" >&2
  exit 1
fi
"$CLI" query "$QUERY" --connect 127.0.0.1:"$MV_PORT" --ix mv --minscore 15 \
  --max-volumes 2 --no-cache > /dev/null
rc=0
"$CLI" query "$QUERY" --connect 127.0.0.1:"$MV_PORT" --ix mv --minscore 15 \
  --volumes vol_9999 --no-cache > /dev/null 2>&1 || rc=$?
if [ "$rc" -eq 0 ]; then
  echo "unknown volume name was not rejected" >&2
  exit 1
fi
kill -TERM "$MV_PID"
rc=0
wait "$MV_PID" || rc=$?
MV_PID=
if [ "$rc" -ne 0 ]; then
  echo "multi-volume oasisd exited $rc after SIGTERM; stderr:" >&2
  cat "$WORK/daemon_mv.err" >&2
  exit 1
fi

echo "== 11. compact merges the volumes, hit set unchanged"
"$CLI" compact "$WORK/ix4" > "$WORK/compact.out"
grep -q "compacted" "$WORK/compact.out" || {
  echo "compact printed no summary:" >&2
  cat "$WORK/compact.out" >&2
  exit 1
}
"$CLI" search "$WORK/ix4" "$QUERY" --minscore 15 > "$WORK/mv_compacted.out"
name_scores "$WORK/mv_compacted.out" > "$WORK/mv_compacted.ns"
diff -u "$WORK/mono.ns" "$WORK/mv_compacted.ns"

echo "== 12. masked index: unique regions survive --mask soft"
# Each record is a unique 80-residue head followed by a 200-residue
# low-complexity tail (short-period repeat): the bomb the masker exists
# to defuse. The query is a 13-mer from one unique head, so it must
# still hit its source sequence in the masked index.
python3 - "$WORK/repeats.fasta" <<'EOF'
import random, sys
random.seed(17)
alphabet = "ACDEFGHIKLMNPQRSTVWY"
with open(sys.argv[1], "w") as f:
    for i in range(40):
        head = "".join(random.choice(alphabet) for _ in range(80))
        unit = "".join(random.choice(alphabet) for _ in range(3))
        f.write(f">rep{i}\n{head}{unit * 67}\n")
EOF
"$CLI" build "$WORK/repeats.fasta" "$WORK/ixmask" --protein --mask soft \
  > /dev/null
MASK_QUERY=$(sed -n '10p' "$WORK/repeats.fasta" | cut -c20-32)
"$CLI" search "$WORK/ixmask" "$MASK_QUERY" --minscore 15 > "$WORK/mask_local.out"
hits_only "$WORK/mask_local.out" > "$WORK/mask_local.hits"
if ! grep -q '^rep4 ' "$WORK/mask_local.hits"; then
  echo "masked index lost the query's source sequence rep4:" >&2
  cat "$WORK/mask_local.out" >&2
  exit 1
fi

echo "   boot a third oasisd serving the masked index"
"$DAEMON" --index masked="$WORK/ixmask" --port 0 --result-cache-mb 4 \
  > "$WORK/daemon_mask.out" 2> "$WORK/daemon_mask.err" &
MASK_PID=$!
for _ in $(seq 1 100); do
  grep -q "oasisd listening on" "$WORK/daemon_mask.out" 2>/dev/null && break
  if ! kill -0 "$MASK_PID" 2>/dev/null; then
    echo "masked-index oasisd died during startup:" >&2
    cat "$WORK/daemon_mask.err" >&2
    exit 1
  fi
  sleep 0.1
done
MASK_PORT=$(sed -n 's/^oasisd listening on .*:\([0-9][0-9]*\)$/\1/p' "$WORK/daemon_mask.out")
"$CLI" query "$MASK_QUERY" --connect 127.0.0.1:"$MASK_PORT" --ix masked \
  --minscore 15 > "$WORK/mask_daemon.out"
hits_only "$WORK/mask_daemon.out" > "$WORK/mask_daemon.hits"
diff -u "$WORK/mask_local.hits" "$WORK/mask_daemon.hits"
echo "   $(wc -l < "$WORK/mask_local.hits") hit lines through the masked index"
kill -TERM "$MASK_PID"
rc=0
wait "$MASK_PID" || rc=$?
MASK_PID=
if [ "$rc" -ne 0 ]; then
  echo "masked-index oasisd exited $rc after SIGTERM; stderr:" >&2
  cat "$WORK/daemon_mask.err" >&2
  exit 1
fi

echo "== 13. SIGTERM drains and exits 0"
kill -TERM "$DAEMON_PID"
rc=0
wait "$DAEMON_PID" || rc=$?
DAEMON_PID=
if [ "$rc" -ne 0 ]; then
  echo "oasisd exited $rc after SIGTERM; stderr:" >&2
  cat "$WORK/daemon.err" >&2
  exit 1
fi
grep -q "draining" "$WORK/daemon.err" || {
  echo "oasisd did not report a graceful drain" >&2
  exit 1
}

echo "daemon smoke: all checks passed"
