#!/usr/bin/env bash
# End-to-end smoke test for oasisd using the shipped binaries only.
#
# Exercises the full daemon lifecycle over real loopback sockets:
#
#   1. build a synthetic protein FASTA and index it with oasis_cli;
#   2. boot oasisd on an ephemeral port and scrape the port from its
#      one-line startup banner;
#   3. parity: `oasis_cli query --connect` must print byte-identical hit
#      lines to a local `oasis_cli search` over the same index;
#   4. cached replay: the second identical query is served from the
#      daemon's result cache and still prints the same hit lines;
#   5. deadline: a 1 ms per-request deadline on a broad query must cut
#      the stream short — exit code 3, kDeadlineExceeded;
#   6. cancel: --cancel-after sends a mid-stream cancel — exit code 4
#      (or 0 when the stream finished before the cancel landed);
#   7. concurrency: several clients in parallel against one daemon, all
#      streams identical to the local baseline;
#   8. /stats: the daemon's stats document parses as JSON and names the
#      served index;
#   9. SIGTERM: graceful drain, daemon exits 0.
#
# CI runs this against an ASan+UBSan build (.github/workflows/ci.yml,
# daemon-integration job) so the whole daemon process is under the
# sanitizer across startup, concurrent serving, and drain. Run locally:
#
#   cmake -B build -S . && cmake --build build -j --target oasisd oasis_cli
#   bash ci/daemon_smoke.sh
#
# BUILD_DIR overrides the build tree (default: ./build).
set -euo pipefail

BUILD_DIR=${BUILD_DIR:-build}
CLI=$BUILD_DIR/oasis_cli
DAEMON=$BUILD_DIR/oasisd
for bin in "$CLI" "$DAEMON"; do
  if [ ! -x "$bin" ]; then
    echo "missing binary: $bin (build the oasisd and oasis_cli targets)" >&2
    exit 1
  fi
done

WORK=$(mktemp -d)
DAEMON_PID=
cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -KILL "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# Strip a query/search transcript down to its hit lines ("NAME score=S
# query_end=Q target_end=T"): `search` wraps them in a banner and a
# timing summary, `query` in a hit-count summary — the hit lines are the
# parity surface.
hits_only() { grep ' score=' "$1" || true; }

echo "== 1. synthesize and index a protein database"
python3 - "$WORK/db.fasta" <<'EOF'
import random, sys
random.seed(11)
alphabet = "ACDEFGHIKLMNPQRSTVWY"
with open(sys.argv[1], "w") as f:
    for i in range(120):
        n = random.randint(120, 400)
        residues = "".join(random.choice(alphabet) for _ in range(n))
        f.write(f">seq{i}\n{residues}\n")
EOF
"$CLI" index "$WORK/db.fasta" "$WORK/ix" --protein > /dev/null
# The query is a real 13-residue prefix of one database sequence, so a
# moderate min-score threshold is guaranteed to produce hits.
QUERY=$(sed -n '8p' "$WORK/db.fasta" | cut -c1-13)

echo "== 2. boot oasisd on an ephemeral port"
"$DAEMON" --index db="$WORK/ix" --port 0 --result-cache-mb 4 \
  > "$WORK/daemon.out" 2> "$WORK/daemon.err" &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  grep -q "oasisd listening on" "$WORK/daemon.out" 2>/dev/null && break
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "oasisd died during startup:" >&2
    cat "$WORK/daemon.err" >&2
    exit 1
  fi
  sleep 0.1
done
PORT=$(sed -n 's/^oasisd listening on .*:\([0-9][0-9]*\)$/\1/p' "$WORK/daemon.out")
if [ -z "$PORT" ]; then
  echo "could not scrape the port from the startup banner:" >&2
  cat "$WORK/daemon.out" >&2
  exit 1
fi
echo "   oasisd pid $DAEMON_PID on port $PORT"

echo "== 3. daemon-vs-local streaming parity"
"$CLI" search "$WORK/ix" "$QUERY" --minscore 15 > "$WORK/local.out"
"$CLI" query "$QUERY" --connect 127.0.0.1:"$PORT" --ix db --minscore 15 \
  > "$WORK/daemon1.out"
hits_only "$WORK/local.out" > "$WORK/local.hits"
hits_only "$WORK/daemon1.out" > "$WORK/daemon1.hits"
if [ ! -s "$WORK/local.hits" ]; then
  echo "local search produced no hits; the smoke query is broken" >&2
  exit 1
fi
diff -u "$WORK/local.hits" "$WORK/daemon1.hits"
echo "   $(wc -l < "$WORK/local.hits") hit lines, byte-identical"

echo "== 4. cached replay"
"$CLI" query "$QUERY" --connect 127.0.0.1:"$PORT" --ix db --minscore 15 \
  > "$WORK/daemon2.out"
grep -q "served from daemon result cache" "$WORK/daemon2.out" || {
  echo "second identical query was not served from the result cache" >&2
  exit 1
}
hits_only "$WORK/daemon2.out" > "$WORK/daemon2.hits"
diff -u "$WORK/local.hits" "$WORK/daemon2.hits"

echo "== 5. per-request deadline cuts the stream short (exit 3)"
rc=0
"$CLI" query "$QUERY" --connect 127.0.0.1:"$PORT" --ix db --minscore 8 \
  --deadline-ms 1 --no-cache > "$WORK/deadline.out" 2> "$WORK/deadline.err" \
  || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "expected exit 3 (deadline exceeded), got $rc" >&2
  cat "$WORK/deadline.err" >&2
  exit 1
fi

echo "== 6. mid-stream cancel (exit 4, or 0 if the stream won the race)"
rc=0
"$CLI" query "$QUERY" --connect 127.0.0.1:"$PORT" --ix db --minscore 8 \
  --cancel-after 1 --no-cache > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 4 ] && [ "$rc" -ne 0 ]; then
  echo "expected exit 4 (cancelled) or 0, got $rc" >&2
  exit 1
fi

echo "== 7. concurrent clients share the daemon and agree"
pids=()
for i in 1 2 3 4 5; do
  "$CLI" query "$QUERY" --connect 127.0.0.1:"$PORT" --ix db --minscore 15 \
    --no-cache > "$WORK/conc$i.out" &
  pids+=($!)
done
for pid in "${pids[@]}"; do wait "$pid"; done
for i in 1 2 3 4 5; do
  hits_only "$WORK/conc$i.out" > "$WORK/conc$i.hits"
  diff -u "$WORK/local.hits" "$WORK/conc$i.hits"
done

echo "== 8. /stats parses as JSON and names the index"
"$CLI" stats --connect 127.0.0.1:"$PORT" > "$WORK/stats.json"
python3 - "$WORK/stats.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert "server" in doc, "stats document lacks a 'server' section"
assert doc["server"]["cache"]["hits"] >= 1, "cached replay left no cache hit"
names = sorted(doc["indexes"])
assert names == ["db"], f"expected served index ['db'], got {names}"
assert "epoch" in doc["indexes"]["db"], "per-index stats lack the epoch"
EOF

echo "== 9. SIGTERM drains and exits 0"
kill -TERM "$DAEMON_PID"
rc=0
wait "$DAEMON_PID" || rc=$?
DAEMON_PID=
if [ "$rc" -ne 0 ]; then
  echo "oasisd exited $rc after SIGTERM; stderr:" >&2
  cat "$WORK/daemon.err" >&2
  exit 1
fi
grep -q "draining" "$WORK/daemon.err" || {
  echo "oasisd did not report a graceful drain" >&2
  exit 1
}

echo "daemon smoke: all checks passed"
