#!/usr/bin/env bash
# Proves the thread-safety gate has teeth: ci/thread_safety_negative.cc
# contains a deliberate unguarded access to a GUARDED_BY member and must
# NOT compile under -Werror=thread-safety. If it compiles, the analysis
# has been silently neutered and this script fails the build.
#
# Usage: ci/run_thread_safety_negative.sh [clang++ binary]
set -u
cd "$(dirname "$0")/.."

CXX="${1:-clang++}"

out=$("$CXX" -std=c++20 -Isrc -Wthread-safety -Werror=thread-safety \
      -fsyntax-only ci/thread_safety_negative.cc 2>&1)
status=$?

if [ "$status" -eq 0 ]; then
  echo "FAIL: thread_safety_negative.cc compiled cleanly —" \
       "the thread-safety analysis is not catching unguarded access"
  exit 1
fi

if ! echo "$out" | grep -q "thread-safety"; then
  echo "FAIL: compile failed, but not with a thread-safety diagnostic:"
  echo "$out"
  exit 1
fi

echo "PASS: negative probe rejected with a thread-safety diagnostic"
exit 0
