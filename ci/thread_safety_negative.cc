// Negative-compile probe for the thread-safety gate.
//
// This file MUST FAIL to compile under
//   clang++ -std=c++20 -Isrc -Wthread-safety -Werror=thread-safety
// — it reads and writes a GUARDED_BY member without holding its mutex.
// The CI step inverts the compiler's exit status: a successful compile
// means the analysis has been silently disabled (annotations macroed
// away, flag dropped, or the header rotted) and the whole -Werror=
// thread-safety leg is vacuous. See ci/run_thread_safety_negative.sh.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    // BUG (deliberate): count_ is guarded by mu_, which is not held.
    ++count_;
  }

  int Read() const {
    oasis::util::MutexLock lock(mu_);
    return count_;
  }

 private:
  mutable oasis::util::Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.Read();
}
