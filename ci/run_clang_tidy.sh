#!/usr/bin/env bash
# Runs clang-tidy (config: the repo's .clang-tidy, warnings are errors)
# over every first-party translation unit in the compilation database.
#
# Usage: ci/run_clang_tidy.sh <build-dir> [clang-tidy binary]
# The build dir must hold compile_commands.json (the top-level
# CMakeLists exports it unconditionally).
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR="${1:?usage: ci/run_clang_tidy.sh <build-dir> [clang-tidy]}"
TIDY="${2:-clang-tidy}"

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "no compile_commands.json in $BUILD_DIR (configure with cmake first)"
  exit 1
fi

# First-party TUs only: the database also lists gtest/benchmark sources
# fetched by the build, which are not ours to lint.
mapfile -t files < <(python3 - "$BUILD_DIR" <<'EOF'
import json, os, sys
build = sys.argv[1]
root = os.getcwd()
seen = set()
for entry in json.load(open(os.path.join(build, "compile_commands.json"))):
    path = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
    rel = os.path.relpath(path, root)
    if rel.startswith(("src/", "tests/", "bench/", "examples/")):
        seen.add(path)
for path in sorted(seen):
    print(path)
EOF
)

echo "clang-tidy over ${#files[@]} translation units"
status=0
printf '%s\n' "${files[@]}" |
  xargs -P "$(nproc)" -n 8 "$TIDY" -p "$BUILD_DIR" --quiet || status=$?

if [ "$status" -ne 0 ]; then
  echo "clang-tidy FAILED (warnings are errors; see above)"
  exit 1
fi
echo "clang-tidy passed"
