#!/usr/bin/env python3
"""oasis_lint: project-specific invariants the generic tools cannot express.

Four rules, each encoding a contract that is documented in the sources and
load-bearing for correctness or for the CI gates:

  R1 lock-order   The AdaptiveReadahead per-segment mutex is a LEAF lock:
                  it is taken with a buffer-pool shard mutex already held
                  (RecordOutcome runs inside the pool's hit/evict paths),
                  so holding it while acquiring ANY other lock inverts the
                  order and can deadlock. While a leaf-lock scope is open,
                  no other lock may be acquired. Clang's -Wthread-safety
                  proves mutual exclusion but not this global ordering.

  R2 naked-new    Every allocation must be owned: `new` is allowed only
                  when the result lands in a smart pointer in the same
                  statement (std::unique_ptr<T> p(new T...), .reset(new
                  ...), make_* is better still); `delete` is never allowed.
                  The one sanctioned exception is the leaked-singleton
                  scoring-matrix arena (ALLOW_NEW_FILES), where process
                  lifetime is the point.

  R3 poll-hook    The resumable cursor's contract (core/oasis.h): the poll
                  hook runs at every suspension point, i.e. before every
                  Step() of the A* loop. Deadlines, cancellation and client
                  disconnects all hang off it — a Step() without a
                  preceding poll makes a query uncancellable for that
                  stretch. Checked structurally in core/oasis.cc: every
                  function that invokes the stepper must reference the
                  poll hook earlier in its body.

  R4 bench-counts Every bench that publishes gated metrics must also
                  publish `counts` denominators — ci/bench_gate.py rejects
                  gated ratios whose sample count is under a floor, and a
                  bench without counts would pass vacuously (the PR-5
                  vacuous-pass fix made this mandatory).

Zero dependencies; regexes over comment-stripped sources. Run from
anywhere in the repo:

  python3 ci/oasis_lint.py             # lint the tree
  python3 ci/oasis_lint.py --self-test # prove the rules fire

Extending: add a `check_*` function returning [(path, line, message)],
register it in CHECKS, and add a good + bad snippet to SELF_TESTS (the
self-test fails any rule that stops firing on its bad snippet).
"""

import argparse
import os
import re
import subprocess
import sys

# --- Configuration ----------------------------------------------------------

# Mutex expressions that are leaf locks: terminal in the lock order.
LEAF_LOCK_RE = re.compile(r"\bstate\.mutex\b")

# Lock-acquiring declarations (RAII). EXPR is captured for classification.
ACQUIRE_RE = re.compile(
    r"\b(?:util::MutexLock|std::lock_guard<[^>]*>|std::unique_lock<[^>]*>|"
    r"std::scoped_lock(?:<[^>]*>)?)\s+\w+\s*[({]\s*([^;)}]+?)\s*[)}]")

# Statements in which a `new` is immediately owned.
OWNED_NEW_RE = re.compile(
    r"(?:unique_ptr|shared_ptr)\s*<[^;]*>\s*\w*\s*[({][^;]*\bnew\b|"
    r"\.reset\s*\(\s*new\b|"
    r"WrapUnique\s*\(\s*new\b")

# Files where naked `new` is the sanctioned leaked-singleton arena.
ALLOW_NEW_FILES = {
    "src/score/substitution_matrix.cc",  # process-lifetime scoring matrices
}

# The stepper invocation (the cursor's suspension point) and the poll hook
# that must gate it. A `Step()` followed by `{` is the definition, not a
# call, and is skipped.
STEP_CALL_RE = re.compile(r"\bStep\s*\(\s*\)\s*(?![{a-zA-Z_])")
POLL_RE = re.compile(r"\bpoll\b")

# The bench JSON emitter (bench/bench_common.h).
BENCH_JSON_RE = re.compile(r"\bWriteBenchJson\s*\(")

LINT_DIRS = ("src", "bench")


def repo_root():
    out = subprocess.run(["git", "rev-parse", "--show-toplevel"],
                         capture_output=True, text=True, check=True)
    return out.stdout.strip()


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            seg = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j = j + 2 if text[j] == "\\" else j + 1
            out.append(quote + " " * max(0, j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


# --- R1: lock order ---------------------------------------------------------

def check_lock_order(path, text):
    """While a leaf-lock scope is open, no other lock may be acquired."""
    failures = []
    # Held leaf locks as (brace_depth_at_declaration, line).
    depth = 0
    held_leaf = []
    acquires = {m.start(): m for m in ACQUIRE_RE.finditer(text)}
    for i, ch in enumerate(text):
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            held_leaf = [(d, ln) for (d, ln) in held_leaf if d <= depth]
        m = acquires.get(i)
        if m is None:
            continue
        expr = m.group(1)
        line = line_of(text, i)
        if held_leaf and not LEAF_LOCK_RE.search(expr):
            d, leaf_line = held_leaf[-1]
            failures.append((path, line,
                             f"lock-order: acquiring '{expr.strip()}' while "
                             f"the leaf lock from line {leaf_line} is held "
                             "(leaf locks must be innermost)"))
        if LEAF_LOCK_RE.search(expr):
            if held_leaf:
                d, leaf_line = held_leaf[-1]
                failures.append((path, line,
                                 "lock-order: nested leaf-lock acquisition "
                                 f"(outer at line {leaf_line})"))
            held_leaf.append((depth, line))
    return failures


# --- R2: naked new/delete ---------------------------------------------------

def statements(text):
    """Yields (start_pos, statement_text) split on top-level ';' and '}'."""
    start = 0
    for i, ch in enumerate(text):
        if ch in ";}{":
            yield start, text[start:i + 1]
            start = i + 1
    if start < len(text):
        yield start, text[start:]


def check_naked_new(path, text):
    rel_allowed = any(path.endswith(f) for f in ALLOW_NEW_FILES)
    failures = []
    for pos, stmt in statements(text):
        for m in re.finditer(r"\bdelete\b(?:\[\])?", stmt):
            # `= delete;` / `= delete("...")` declares a deleted function —
            # C++ grammar, not a deallocation.
            if stmt[:m.start()].rstrip().endswith("="):
                continue
            failures.append((path, line_of(text, pos + m.start()),
                             "naked-delete: manual delete is never allowed "
                             "(own the allocation in a smart pointer)"))
        for m in re.finditer(r"\bnew\b", stmt):
            if rel_allowed:
                continue
            if OWNED_NEW_RE.search(stmt):
                continue
            failures.append((path, line_of(text, pos + m.start()),
                             "naked-new: allocation not owned by a smart "
                             "pointer in the same statement"))
    return failures


# --- R3: poll hook before queue pop -----------------------------------------

def function_bodies(text):
    """Yields (start_pos, body) for every top-level-ish function body.

    Heuristic: a '{' preceded by ')' (possibly with specifiers between)
    opens a function; the body runs to its matching '}'.
    """
    opener = re.compile(r"\)\s*(?:const|noexcept|override|final|\s)*\{")
    i = 0
    while True:
        m = opener.search(text, i)
        if m is None:
            return
        start = m.end() - 1
        depth = 0
        for j in range(start, len(text)):
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
                if depth == 0:
                    yield start, text[start:j + 1]
                    break
        else:
            return
        i = j + 1


def check_poll_hook(path, text):
    if not path.replace(os.sep, "/").endswith("core/oasis.cc"):
        return []
    failures = []
    for start, body in function_bodies(text):
        calls = list(STEP_CALL_RE.finditer(body))
        if not calls:
            continue
        first_call = calls[0]
        if not POLL_RE.search(body, 0, first_call.start()):
            failures.append(
                (path, line_of(text, start + first_call.start()),
                 "poll-hook: stepper invocation (a cursor suspension "
                 "point) without a preceding poll-hook check in this "
                 "function — deadlines and cancellation would skip "
                 "this stretch"))
    return failures


# --- R4: bench counts denominator -------------------------------------------

def call_args(text, open_paren):
    """Splits the argument list starting at `open_paren` ('(') into
    top-level arguments; returns (args, end_pos)."""
    depth = 0
    args = []
    current = []
    for i in range(open_paren, len(text)):
        ch = text[i]
        if ch in "({[":
            depth += 1
            if depth > 1:
                current.append(ch)
        elif ch in ")}]":
            depth -= 1
            if depth == 0:
                args.append("".join(current).strip())
                return args, i
            current.append(ch)
        elif ch == "," and depth == 1:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    return args, len(text)


def check_bench_counts(path, text):
    if "/bench/" not in "/" + path.replace(os.sep, "/"):
        return []
    failures = []
    for m in BENCH_JSON_RE.finditer(text):
        args, _ = call_args(text, m.end() - 1)
        line = line_of(text, m.start())
        if len(args) < 3 or args[2] in ("", "{}"):
            failures.append(
                (path, line,
                 "bench-counts: WriteBenchJson without a counts "
                 "denominator — the bench gate's vacuous-pass check "
                 "needs a sample count for every gated ratio"))
    return failures


CHECKS = [
    ("lock-order", check_lock_order, (".cc", ".h")),
    ("naked-new", check_naked_new, (".cc", ".h")),
    ("poll-hook", check_poll_hook, (".cc",)),
    ("bench-counts", check_bench_counts, (".cc",)),
]


def lint_tree(root):
    failures = []
    for top in LINT_DIRS:
        for dirpath, _, names in os.walk(os.path.join(root, top)):
            for name in sorted(names):
                if not name.endswith((".cc", ".h")):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                with open(path, encoding="utf-8") as f:
                    text = strip_comments_and_strings(f.read())
                for _, fn, exts in CHECKS:
                    if name.endswith(exts):
                        failures.extend(fn(rel, text))
    return failures


# --- Self-test --------------------------------------------------------------

SELF_TESTS = [
    # (rule, snippet, should_fail)
    ("lock-order", """
void Good() {
  util::MutexLock lock(shard.mutex);
  util::MutexLock leaf(state.mutex);
}
""", False),
    ("lock-order", """
void Bad() {
  util::MutexLock leaf(state.mutex);
  util::MutexLock lock(shard.mutex);
}
""", True),
    ("lock-order", """
void GoodScoped() {
  { util::MutexLock leaf(state.mutex); }
  util::MutexLock lock(shard.mutex);
}
""", False),
    ("naked-new", """
void Good() { std::unique_ptr<Foo> p(new Foo()); }
""", False),
    ("naked-new", """
void Bad() { Foo* p = new Foo(); }
""", True),
    ("naked-new", """
void Bad(Foo* p) { delete p; }
""", True),
    ("naked-new", """
struct Good { Good(const Good&) = delete; };
""", False),
    ("poll-hook", """
util::Status Next() {
  while (!done_) {
    if (options_.poll) OASIS_RETURN_NOT_OK(options_.poll());
    OASIS_RETURN_NOT_OK(Step());
  }
  return util::Status::OK();
}
""", False),
    ("poll-hook", """
util::Status Next() {
  while (!done_) {
    OASIS_RETURN_NOT_OK(Step());
  }
  return util::Status::OK();
}
""", True),
    ("poll-hook", """
util::Status Step() {
  QueueEntry top = queue_.top();
  queue_.pop();
  return util::Status::OK();
}
""", False),
    ("bench-counts", """
int main() {
  WriteBenchJson("x", {{"a", 1.0}}, {{"n", 10}});
}
""", False),
    ("bench-counts", """
int main() {
  WriteBenchJson("x", {{"a", 1.0}});
}
""", True),
]


def self_test():
    by_name = {name: fn for name, fn, _ in CHECKS}
    failed = 0
    for rule, snippet, should_fail in SELF_TESTS:
        fn = by_name[rule]
        path = {"bench-counts": "bench/self_test.cc",
                "poll-hook": "src/core/oasis.cc"}.get(rule,
                                                      "src/self_test.cc")
        findings = fn(path, strip_comments_and_strings(snippet))
        fired = bool(findings)
        ok = fired == should_fail
        status = "ok" if ok else "FAIL"
        kind = "bad" if should_fail else "good"
        print(f"  [{status}] {rule}: {kind} snippet "
              f"{'fired' if fired else 'passed'}")
        if not ok:
            failed += 1
            for f in findings:
                print(f"         unexpected: {f[2]}")
    if failed:
        print(f"self-test FAILED ({failed} cases)")
        return 1
    print(f"self-test passed ({len(SELF_TESTS)} cases)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded rule tests and exit")
    args = parser.parse_args()
    if args.self_test:
        sys.exit(self_test())

    failures = lint_tree(repo_root())
    if failures:
        print("oasis_lint FAILED:")
        for path, line, message in sorted(failures):
            print(f"  {path}:{line}: {message}")
        sys.exit(1)
    print("oasis_lint passed (lock-order, naked-new, poll-hook, "
          "bench-counts)")


if __name__ == "__main__":
    main()
